// Package config defines the device configuration model and a CLI-flavored
// configuration language: a line/block oriented dialect close to what WAN
// routers speak, with a parser, a canonical writer, and an incremental
// update merger (the paper's §9 lesson: operators write incremental command
// lines, the verifier needs full snapshots).
//
// Peers are referenced by router name rather than interface IP — a
// deliberate simplification documented in DESIGN.md that preserves every
// behavior the paper's experiments exercise.
package config

import (
	"fmt"
	"sort"

	"hoyan/internal/netaddr"
	"hoyan/internal/policy"
)

// Device is the complete parsed configuration of one router.
type Device struct {
	Hostname string
	Vendor   string

	BGP     *BGP
	ISIS    *ISIS
	Statics []StaticRoute

	RoutePolicies map[string]*policy.RoutePolicy
	PrefixLists   map[string]*policy.PrefixList
	ACLs          map[string]*policy.ACL

	// InterfaceACLs binds ACLs to interfaces on the data plane:
	// key "peerName/in" or "peerName/out" → ACL name.
	InterfaceACLs map[string]string

	// Allows holds vet-suppression directives declared in the config
	// ("# hoyan:allow ANALYZER OBJECT REASON..."). Like source lint
	// suppressions, a reason is mandatory — an Allow with an empty
	// Reason is kept for the writer but never suppresses anything.
	Allows []Allow
}

// Allow suppresses one vet analyzer's findings on one config object.
// Object is a ConfigBlocks-style identifier ("route-policy/TAG",
// "neighbor/r2", "static/10.0.0.0/8") or "*" for the whole device.
type Allow struct {
	Analyzer string
	Object   string
	Reason   string
}

// NewDevice returns an empty configuration for hostname.
func NewDevice(hostname, vendor string) *Device {
	return &Device{
		Hostname:      hostname,
		Vendor:        vendor,
		RoutePolicies: map[string]*policy.RoutePolicy{},
		PrefixLists:   map[string]*policy.PrefixList{},
		ACLs:          map[string]*policy.ACL{},
		InterfaceACLs: map[string]string{},
	}
}

// BGP is the BGP process configuration.
type BGP struct {
	AS       uint32
	RouterID uint32
	// LocalAS, when nonzero, is the pre-migration AS number kept toward
	// existing peers (the "local AS" VSB context).
	LocalAS uint32

	Networks     []netaddr.Prefix
	Neighbors    []*Neighbor
	Redistribute []Redistribution
	Aggregates   []Aggregate

	// Preference is the device-wide eBGP route preference (admin
	// distance); zero means the protocol default. The §7.1 outage case is
	// a collision between this and static preferences.
	Preference uint32
}

// Neighbor is one BGP peering.
type Neighbor struct {
	PeerName string
	RemoteAS uint32
	// InPolicy/OutPolicy name route policies in Device.RoutePolicies.
	InPolicy, OutPolicy string
	// Preference overrides eBGP preference for routes from this peer.
	Preference uint32
	// NextHopSelf rewrites next-hop to this router on advertisements.
	NextHopSelf bool
	// RouteReflectorClient marks the peer as an RR client of this device.
	RouteReflectorClient bool
	// AllowASIn permits up to this many occurrences of the local AS in
	// received paths (the "AS loop" VSB area).
	AllowASIn int
	// RemovePrivateAS enables private-AS stripping on egress to this peer
	// (vendor semantics differ — the §1 motivating VSB).
	RemovePrivateAS bool
	// VPN marks an iBGP-over-VPN session (the "self-next-hop" VSB area).
	VPN bool
}

// Redistribution imports routes from another protocol into BGP.
type Redistribution struct {
	From   string // "static", "isis", "connected"
	Policy string // optional route-policy filter
}

// Aggregate is an explicit route-aggregation trigger (§5.3): when all
// component prefixes are present, announce Prefix instead.
type Aggregate struct {
	Prefix     netaddr.Prefix
	Components []netaddr.Prefix
	// SummaryOnly suppresses the components when the aggregate is active
	// (always true in our model, matching the paper's exclusive encoding).
	SummaryOnly bool
}

// ISIS is the IS-IS process configuration.
type ISIS struct {
	Enabled bool
	// Level is 1, 2 or 12 (L1/L2).
	Level int
	// Metrics overrides the topology link weight toward a named neighbor.
	Metrics map[string]uint32
	// Penetrate enables L1→L2 route penetration (modeled via communities
	// per Appendix C).
	Penetrate bool
}

// StaticRoute is a static route to a next-hop router.
type StaticRoute struct {
	Prefix     netaddr.Prefix
	NextHop    string // router name
	Preference uint32 // admin preference; zero = protocol default (1)
}

// Neighbor returns the neighbor entry for a peer, creating it when absent.
func (b *BGP) Neighbor(peer string) *Neighbor {
	for _, n := range b.Neighbors {
		if n.PeerName == peer {
			return n
		}
	}
	n := &Neighbor{PeerName: peer}
	b.Neighbors = append(b.Neighbors, n)
	return n
}

// FindNeighbor returns the neighbor entry without creating it.
func (b *BGP) FindNeighbor(peer string) (*Neighbor, bool) {
	for _, n := range b.Neighbors {
		if n.PeerName == peer {
			return n, true
		}
	}
	return nil, false
}

// RemoveNeighbor deletes a peering, reporting whether it existed.
func (b *BGP) RemoveNeighbor(peer string) bool {
	for i, n := range b.Neighbors {
		if n.PeerName == peer {
			b.Neighbors = append(b.Neighbors[:i], b.Neighbors[i+1:]...)
			return true
		}
	}
	return false
}

// HasNetwork reports whether the BGP process originates p.
func (b *BGP) HasNetwork(p netaddr.Prefix) bool {
	for _, n := range b.Networks {
		if n == p {
			return true
		}
	}
	return false
}

// Clone deep-copies the device configuration, used when computing target
// configurations (online snapshot + proposed update).
func (d *Device) Clone() *Device {
	out := NewDevice(d.Hostname, d.Vendor)
	out.Statics = append([]StaticRoute(nil), d.Statics...)
	out.Allows = append([]Allow(nil), d.Allows...)
	if d.BGP != nil {
		b := *d.BGP
		b.Networks = append([]netaddr.Prefix(nil), d.BGP.Networks...)
		b.Redistribute = append([]Redistribution(nil), d.BGP.Redistribute...)
		b.Aggregates = nil
		for _, a := range d.BGP.Aggregates {
			a.Components = append([]netaddr.Prefix(nil), a.Components...)
			b.Aggregates = append(b.Aggregates, a)
		}
		b.Neighbors = nil
		for _, n := range d.BGP.Neighbors {
			cp := *n
			b.Neighbors = append(b.Neighbors, &cp)
		}
		out.BGP = &b
	}
	if d.ISIS != nil {
		i := *d.ISIS
		i.Metrics = map[string]uint32{}
		for k, v := range d.ISIS.Metrics {
			i.Metrics[k] = v
		}
		out.ISIS = &i
	}
	for name, rp := range d.RoutePolicies {
		cp := *rp
		cp.Terms = append([]policy.Term(nil), rp.Terms...)
		out.RoutePolicies[name] = &cp
	}
	for name, pl := range d.PrefixLists {
		cp := *pl
		cp.Rules = append([]policy.PrefixRule(nil), pl.Rules...)
		out.PrefixLists[name] = &cp
	}
	for name, acl := range d.ACLs {
		cp := *acl
		cp.Rules = append([]policy.ACLRule(nil), acl.Rules...)
		out.ACLs[name] = &cp
	}
	for k, v := range d.InterfaceACLs {
		out.InterfaceACLs[k] = v
	}
	return out
}

// ResolvedPolicy returns the named route policy with prefix lists bound, or
// nil for the empty name. Unknown names return an error — a config bug
// worth surfacing, not masking.
func (d *Device) ResolvedPolicy(name string) (*policy.RoutePolicy, error) {
	if name == "" {
		return nil, nil
	}
	p, ok := d.RoutePolicies[name]
	if !ok {
		return nil, fmt.Errorf("config: %s references unknown route-policy %q", d.Hostname, name)
	}
	return p, nil
}

// Validate performs cross-reference checks: policies, prefix lists and
// ACLs referenced by name must exist.
func (d *Device) Validate() error {
	if d.BGP != nil {
		for _, n := range d.BGP.Neighbors {
			for _, pn := range []string{n.InPolicy, n.OutPolicy} {
				if pn == "" {
					continue
				}
				if _, ok := d.RoutePolicies[pn]; !ok {
					return fmt.Errorf("config: %s neighbor %s references unknown route-policy %q", d.Hostname, n.PeerName, pn)
				}
			}
		}
		for _, r := range d.BGP.Redistribute {
			if r.Policy != "" {
				if _, ok := d.RoutePolicies[r.Policy]; !ok {
					return fmt.Errorf("config: %s redistribute %s references unknown route-policy %q", d.Hostname, r.From, r.Policy)
				}
			}
		}
	}
	for _, rp := range d.RoutePolicies {
		for _, term := range rp.Terms {
			if term.Match.PrefixList != nil && term.Match.PrefixList.Name != "" {
				if _, ok := d.PrefixLists[term.Match.PrefixList.Name]; !ok {
					return fmt.Errorf("config: %s route-policy %s references unknown prefix-list %q", d.Hostname, rp.Name, term.Match.PrefixList.Name)
				}
			}
		}
	}
	for key, aclName := range d.InterfaceACLs {
		if _, ok := d.ACLs[aclName]; !ok {
			return fmt.Errorf("config: %s interface binding %s references unknown access-list %q", d.Hostname, key, aclName)
		}
	}
	return nil
}

// ConfigBlocks splits the device configuration into named blocks, each
// representing a single policy or behavior (§6 "Scalability of model
// validation": the tuner selects prefixes covering most blocks). Keys are
// stable identifiers like "bgp", "neighbor/r2", "route-policy/RP1".
func (d *Device) ConfigBlocks() []string {
	var blocks []string
	if d.BGP != nil {
		blocks = append(blocks, "bgp")
		for _, n := range d.BGP.Neighbors {
			blocks = append(blocks, "neighbor/"+n.PeerName)
		}
		for _, a := range d.BGP.Aggregates {
			blocks = append(blocks, "aggregate/"+a.Prefix.String())
		}
		for _, r := range d.BGP.Redistribute {
			blocks = append(blocks, "redistribute/"+r.From)
		}
	}
	if d.ISIS != nil && d.ISIS.Enabled {
		blocks = append(blocks, "isis")
	}
	if len(d.Statics) > 0 {
		blocks = append(blocks, "static")
	}
	for name := range d.RoutePolicies {
		blocks = append(blocks, "route-policy/"+name)
	}
	for name := range d.ACLs {
		blocks = append(blocks, "access-list/"+name)
	}
	sort.Strings(blocks)
	return blocks
}
