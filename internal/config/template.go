package config

import (
	"fmt"
	"strings"
)

// Template is a parameterized update recipe — the §9 mechanism: "we have
// developed many templates for automatically mapping the operator-input
// incremental command lines to the complete configuration". Operators
// invoke a template with arguments; expansion produces the update lines
// that ApplyUpdate merges into the snapshot.
//
// Template text format:
//
//	template add-peering(peer, as)
//	 router bgp 64500
//	  neighbor {peer} remote-as {as}
//	end
//
// Placeholders are {param}; every declared parameter must be used and
// every use must be declared.
type Template struct {
	Name   string
	Params []string
	Lines  []string
}

// ParseTemplates parses a template library from text. Lines outside
// template/end blocks must be blank or comments (#).
func ParseTemplates(text string) (map[string]*Template, error) {
	out := map[string]*Template{}
	var cur *Template
	for i, raw := range strings.Split(text, "\n") {
		lineNo := i + 1
		line := strings.TrimRight(raw, " \t")
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "" || strings.HasPrefix(trimmed, "#"):
			continue
		case strings.HasPrefix(trimmed, "template "):
			if cur != nil {
				return nil, fmt.Errorf("config: line %d: nested template", lineNo)
			}
			head := strings.TrimPrefix(trimmed, "template ")
			open := strings.IndexByte(head, '(')
			closeIdx := strings.IndexByte(head, ')')
			if open < 0 || closeIdx < open {
				return nil, fmt.Errorf("config: line %d: template wants NAME(params...)", lineNo)
			}
			name := strings.TrimSpace(head[:open])
			if name == "" {
				return nil, fmt.Errorf("config: line %d: empty template name", lineNo)
			}
			if _, dup := out[name]; dup {
				return nil, fmt.Errorf("config: line %d: duplicate template %q", lineNo, name)
			}
			cur = &Template{Name: name}
			for _, p := range strings.Split(head[open+1:closeIdx], ",") {
				p = strings.TrimSpace(p)
				if p != "" {
					cur.Params = append(cur.Params, p)
				}
			}
		case trimmed == "end":
			if cur == nil {
				return nil, fmt.Errorf("config: line %d: end outside template", lineNo)
			}
			if err := cur.validate(); err != nil {
				return nil, fmt.Errorf("config: template %s: %w", cur.Name, err)
			}
			out[cur.Name] = cur
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("config: line %d: content outside template", lineNo)
			}
			// Preserve one level of indentation relative to the template
			// body so block structure survives expansion.
			cur.Lines = append(cur.Lines, strings.TrimPrefix(line, " "))
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("config: template %s not terminated with end", cur.Name)
	}
	return out, nil
}

// validate checks that declared parameters and used placeholders agree.
func (t *Template) validate() error {
	used := map[string]bool{}
	for _, l := range t.Lines {
		rest := l
		for {
			open := strings.IndexByte(rest, '{')
			if open < 0 {
				break
			}
			closeIdx := strings.IndexByte(rest[open:], '}')
			if closeIdx < 0 {
				return fmt.Errorf("unterminated placeholder in %q", l)
			}
			used[rest[open+1:open+closeIdx]] = true
			rest = rest[open+closeIdx+1:]
		}
	}
	declared := map[string]bool{}
	for _, p := range t.Params {
		declared[p] = true
		if !used[p] {
			return fmt.Errorf("parameter %q declared but never used", p)
		}
	}
	for u := range used {
		if !declared[u] {
			return fmt.Errorf("placeholder {%s} not declared", u)
		}
	}
	return nil
}

// Expand instantiates the template into an Update for a device. All
// parameters must be supplied; extras are an error (operators' typos
// should fail loudly).
func (t *Template) Expand(device string, args map[string]string) (Update, error) {
	for _, p := range t.Params {
		if _, ok := args[p]; !ok {
			return Update{}, fmt.Errorf("config: template %s: missing argument %q", t.Name, p)
		}
	}
	for a := range args {
		found := false
		for _, p := range t.Params {
			if p == a {
				found = true
				break
			}
		}
		if !found {
			return Update{}, fmt.Errorf("config: template %s: unknown argument %q", t.Name, a)
		}
	}
	up := Update{Device: device}
	for _, l := range t.Lines {
		for _, p := range t.Params {
			l = strings.ReplaceAll(l, "{"+p+"}", args[p])
		}
		up.Lines = append(up.Lines, l)
	}
	return up, nil
}

// BuiltinTemplates returns the update recipes the generator's WANs use
// daily — the common operations of §3.2 ("applications' footprint
// expansions", peering changes).
func BuiltinTemplates(wanAS uint32) map[string]*Template {
	text := `
template announce-prefix(prefix)
 router bgp {as}
  network {prefix}
end

template withdraw-prefix(prefix)
 no network {prefix}
end

template add-ebgp-peer(peer, peeras)
 router bgp {as}
  neighbor {peer} remote-as {peeras}
end

template remove-peer(peer)
 no neighbor {peer}
end

template set-static(prefix, nexthop, pref)
 ip route {prefix} {nexthop} preference {pref}
end

template tag-ingress(peer, policy, community)
 route-policy {policy} permit 10
  set community add {community}
 router bgp {as}
  neighbor {peer} route-policy {policy} in
end
`
	lib, err := ParseTemplates(strings.ReplaceAll(text, "{as}", fmt.Sprint(wanAS)))
	if err != nil {
		panic("config: builtin templates: " + err.Error())
	}
	return lib
}
