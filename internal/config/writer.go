package config

import (
	"fmt"
	"sort"
	"strings"

	"hoyan/internal/netaddr"
	"hoyan/internal/policy"
	"hoyan/internal/route"
)

// Write serializes the device configuration in the canonical dialect
// Parse accepts, so Parse(Write(d)) round-trips. Output ordering is
// deterministic.
func Write(d *Device) string {
	var b strings.Builder
	if d.Hostname != "" {
		fmt.Fprintf(&b, "hostname %s\n", d.Hostname)
	}
	if d.Vendor != "" {
		fmt.Fprintf(&b, "vendor %s\n", d.Vendor)
	}
	if d.BGP != nil {
		writeBGP(&b, d.BGP)
	}
	if d.ISIS != nil && d.ISIS.Enabled {
		writeISIS(&b, d.ISIS)
	}
	for _, sr := range d.Statics {
		if sr.Preference != 0 {
			fmt.Fprintf(&b, "ip route %s %s preference %d\n", sr.Prefix, sr.NextHop, sr.Preference)
		} else {
			fmt.Fprintf(&b, "ip route %s %s\n", sr.Prefix, sr.NextHop)
		}
	}
	for _, name := range sortedKeys(d.PrefixLists) {
		writePrefixList(&b, d.PrefixLists[name])
	}
	for _, name := range sortedKeys(d.RoutePolicies) {
		writeRoutePolicy(&b, d.RoutePolicies[name])
	}
	for _, name := range sortedKeys(d.ACLs) {
		writeACL(&b, d.ACLs[name])
	}
	for _, key := range sortedKeys2(d.InterfaceACLs) {
		parts := strings.SplitN(key, "/", 2)
		fmt.Fprintf(&b, "interface %s access-list %s %s\n", parts[0], d.InterfaceACLs[key], parts[1])
	}
	for _, a := range d.Allows {
		if a.Reason != "" {
			fmt.Fprintf(&b, "# hoyan:allow %s %s %s\n", a.Analyzer, a.Object, a.Reason)
		} else {
			fmt.Fprintf(&b, "# hoyan:allow %s %s\n", a.Analyzer, a.Object)
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys2(m map[string]string) []string { return sortedKeys(m) }

func writeBGP(b *strings.Builder, cfg *BGP) {
	fmt.Fprintf(b, "router bgp %d\n", cfg.AS)
	if cfg.RouterID != 0 {
		rid := netaddr.Prefix{Addr: cfg.RouterID, Len: 32}
		fmt.Fprintf(b, "  router-id %s\n", strings.TrimSuffix(rid.String(), "/32"))
	}
	if cfg.Preference != 0 {
		fmt.Fprintf(b, "  preference %d\n", cfg.Preference)
	}
	if cfg.LocalAS != 0 {
		fmt.Fprintf(b, "  local-as %d\n", cfg.LocalAS)
	}
	nets := append([]netaddr.Prefix(nil), cfg.Networks...)
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].Addr != nets[j].Addr {
			return nets[i].Addr < nets[j].Addr
		}
		return nets[i].Len < nets[j].Len
	})
	for _, n := range nets {
		fmt.Fprintf(b, "  network %s\n", n)
	}
	for _, r := range cfg.Redistribute {
		if r.Policy != "" {
			fmt.Fprintf(b, "  redistribute %s route-policy %s\n", r.From, r.Policy)
		} else {
			fmt.Fprintf(b, "  redistribute %s\n", r.From)
		}
	}
	for _, a := range cfg.Aggregates {
		parts := make([]string, len(a.Components))
		for i, c := range a.Components {
			parts[i] = c.String()
		}
		fmt.Fprintf(b, "  aggregate-address %s components %s\n", a.Prefix, strings.Join(parts, " "))
	}
	neighbors := append([]*Neighbor(nil), cfg.Neighbors...)
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i].PeerName < neighbors[j].PeerName })
	for _, n := range neighbors {
		fmt.Fprintf(b, "  neighbor %s remote-as %d\n", n.PeerName, n.RemoteAS)
		if n.InPolicy != "" {
			fmt.Fprintf(b, "  neighbor %s route-policy %s in\n", n.PeerName, n.InPolicy)
		}
		if n.OutPolicy != "" {
			fmt.Fprintf(b, "  neighbor %s route-policy %s out\n", n.PeerName, n.OutPolicy)
		}
		if n.Preference != 0 {
			fmt.Fprintf(b, "  neighbor %s preference %d\n", n.PeerName, n.Preference)
		}
		if n.NextHopSelf {
			fmt.Fprintf(b, "  neighbor %s next-hop-self\n", n.PeerName)
		}
		if n.RouteReflectorClient {
			fmt.Fprintf(b, "  neighbor %s route-reflector-client\n", n.PeerName)
		}
		if n.RemovePrivateAS {
			fmt.Fprintf(b, "  neighbor %s remove-private-as\n", n.PeerName)
		}
		if n.VPN {
			fmt.Fprintf(b, "  neighbor %s vpn\n", n.PeerName)
		}
		if n.AllowASIn > 0 {
			fmt.Fprintf(b, "  neighbor %s allowas-in %d\n", n.PeerName, n.AllowASIn)
		}
	}
}

func writeISIS(b *strings.Builder, cfg *ISIS) {
	b.WriteString("router isis\n")
	switch cfg.Level {
	case 12:
		b.WriteString("  level 12\n")
	case 1:
		b.WriteString("  level 1\n")
	default:
		b.WriteString("  level 2\n")
	}
	if cfg.Penetrate {
		b.WriteString("  penetrate\n")
	}
	for _, peer := range sortedKeysU32(cfg.Metrics) {
		fmt.Fprintf(b, "  metric %s %d\n", peer, cfg.Metrics[peer])
	}
}

func sortedKeysU32(m map[string]uint32) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writePrefixList(b *strings.Builder, pl *policy.PrefixList) {
	for _, r := range pl.Rules {
		fmt.Fprintf(b, "ip prefix-list %s %s %s", pl.Name, r.Action, r.Prefix)
		if r.GE != 0 {
			fmt.Fprintf(b, " ge %d", r.GE)
		}
		if r.LE != 0 {
			fmt.Fprintf(b, " le %d", r.LE)
		}
		b.WriteString("\n")
	}
}

func writeRoutePolicy(b *strings.Builder, rp *policy.RoutePolicy) {
	for _, t := range rp.Terms {
		fmt.Fprintf(b, "route-policy %s %s %d\n", rp.Name, t.Action, t.Seq)
		m := t.Match
		if m.PrefixList != nil {
			fmt.Fprintf(b, "  match prefix-list %s\n", m.PrefixList.Name)
		}
		if m.Community != 0 {
			fmt.Fprintf(b, "  match community %s\n", m.Community)
		}
		if m.NoCommunity != 0 {
			fmt.Fprintf(b, "  match no-community %s\n", m.NoCommunity)
		}
		if m.ASInPath != 0 {
			fmt.Fprintf(b, "  match as-path %d\n", m.ASInPath)
		}
		if m.Protocol != nil {
			fmt.Fprintf(b, "  match protocol %s\n", *m.Protocol)
		}
		s := t.Set
		if s.LocalPref != nil {
			fmt.Fprintf(b, "  set local-preference %d\n", *s.LocalPref)
		}
		if s.Weight != nil {
			fmt.Fprintf(b, "  set weight %d\n", *s.Weight)
		}
		if s.MED != nil {
			fmt.Fprintf(b, "  set med %d\n", *s.MED)
		}
		if s.ClearComms {
			b.WriteString("  set community none\n")
		}
		if len(s.AddComms) > 0 {
			b.WriteString("  set community add " + joinComms(s.AddComms) + "\n")
		}
		if len(s.DelComms) > 0 {
			b.WriteString("  set community delete " + joinComms(s.DelComms) + "\n")
		}
		if len(s.PrependAS) > 0 {
			parts := make([]string, len(s.PrependAS))
			for i, as := range s.PrependAS {
				parts[i] = fmt.Sprint(as)
			}
			b.WriteString("  set as-path prepend " + strings.Join(parts, " ") + "\n")
		}
		if s.NextHopSelf {
			b.WriteString("  set next-hop-self\n")
		}
	}
}

func joinComms(cs []route.Community) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

func writeACL(b *strings.Builder, acl *policy.ACL) {
	for _, r := range acl.Rules {
		src, dst := "any", "any"
		if r.Src != (netaddr.Prefix{}) {
			src = r.Src.String()
		}
		if r.Dst != (netaddr.Prefix{}) {
			dst = r.Dst.String()
		}
		fmt.Fprintf(b, "access-list %s %s %s %s\n", acl.Name, r.Action, src, dst)
	}
}
