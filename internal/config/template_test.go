package config

import (
	"strings"
	"testing"
)

func TestParseTemplates(t *testing.T) {
	lib, err := ParseTemplates(`
# comment
template add-net(prefix)
 router bgp 100
  network {prefix}
end

template drop-peer(peer)
 no neighbor {peer}
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 2 {
		t.Fatalf("templates %v", lib)
	}
	tpl := lib["add-net"]
	if len(tpl.Params) != 1 || tpl.Params[0] != "prefix" || len(tpl.Lines) != 2 {
		t.Fatalf("template %+v", tpl)
	}
}

func TestParseTemplateErrors(t *testing.T) {
	cases := []string{
		"template broken\nend",            // no parens
		"template a()\ntemplate b()\nend", // nested
		"stray line",                      // content outside
		"end",                             // end outside
		"template a(x)\n line without placeholder\nend",      // unused param
		"template a()\n uses {y}\nend",                       // undeclared placeholder
		"template a()\n bad {unterminated\nend",              // unterminated
		"template a(x)\n {x}\nend\ntemplate a(x)\n {x}\nend", // duplicate
		"template a(x)\n {x}",                                // unterminated template
	}
	for _, c := range cases {
		if _, err := ParseTemplates(c); err == nil {
			t.Errorf("ParseTemplates(%q) must fail", c)
		}
	}
}

func TestExpandAndApply(t *testing.T) {
	d := mustParse(t, sampleConfig)
	lib := BuiltinTemplates(100)
	tpl := lib["announce-prefix"]
	up, err := tpl.Expand("r1", map[string]string{"prefix": "99.0.0.0/8"})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := ApplyUpdate(d, up)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range nd.BGP.Networks {
		if n.String() == "99.0.0.0/8" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expanded template must announce the prefix; lines %v", up.Lines)
	}
}

func TestExpandArgumentErrors(t *testing.T) {
	lib := BuiltinTemplates(100)
	tpl := lib["add-ebgp-peer"]
	if _, err := tpl.Expand("r1", map[string]string{"peer": "x"}); err == nil {
		t.Fatal("missing argument must fail")
	}
	if _, err := tpl.Expand("r1", map[string]string{"peer": "x", "peeras": "1", "zzz": "1"}); err == nil {
		t.Fatal("unknown argument must fail")
	}
}

func TestBuiltinTemplatesComplete(t *testing.T) {
	lib := BuiltinTemplates(64500)
	for _, name := range []string{"announce-prefix", "withdraw-prefix", "add-ebgp-peer", "remove-peer", "set-static", "tag-ingress"} {
		if lib[name] == nil {
			t.Fatalf("missing builtin %q", name)
		}
	}
	// The AS is baked in.
	up, err := lib["add-ebgp-peer"].Expand("r1", map[string]string{"peer": "gw", "peeras": "65001"})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(up.Lines, "\n")
	if !strings.Contains(joined, "router bgp 64500") {
		t.Fatalf("expanded lines %q", joined)
	}
}
