package config

import (
	"fmt"
	"strconv"
	"strings"

	"hoyan/internal/netaddr"
	"hoyan/internal/policy"
	"hoyan/internal/route"
)

// ParseError reports a configuration syntax or semantic error with its
// line number.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("config: line %d: %s (in %q)", e.Line, e.Msg, e.Text)
}

type parser struct {
	dev *Device
	// block context
	inBGP   bool
	inISIS  bool
	curTerm *policy.Term // current route-policy term
	curRP   string
	line    int
	raw     string
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Text: p.raw, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses a full device configuration.
func Parse(text string) (*Device, error) {
	p := &parser{dev: NewDevice("", "")}
	for i, raw := range strings.Split(text, "\n") {
		p.line = i + 1
		p.raw = strings.TrimSpace(raw)
		if err := p.parseLine(p.raw); err != nil {
			return nil, err
		}
	}
	p.closeTerm()
	resolvePrefixLists(p.dev)
	if err := p.dev.Validate(); err != nil {
		return nil, err
	}
	return p.dev, nil
}

// resolvePrefixLists rebinds placeholder prefix-list references (created
// while parsing "match prefix-list NAME") to the parsed lists.
func resolvePrefixLists(d *Device) {
	for _, rp := range d.RoutePolicies {
		for i := range rp.Terms {
			if pl := rp.Terms[i].Match.PrefixList; pl != nil {
				if real, ok := d.PrefixLists[pl.Name]; ok {
					rp.Terms[i].Match.PrefixList = real
				}
			}
		}
	}
}

func (p *parser) closeTerm() {
	if p.curTerm != nil {
		rp := p.dev.RoutePolicies[p.curRP]
		rp.Terms = append(rp.Terms, *p.curTerm)
		p.curTerm = nil
	}
}

var topLevel = map[string]bool{
	"hostname": true, "vendor": true, "router": true, "ip": true,
	"route-policy": true, "access-list": true, "interface": true,
}

func (p *parser) parseLine(line string) error {
	if strings.HasPrefix(line, "#") {
		// Comment — except for the vet-suppression directive, which is
		// deliberately comment-shaped so configs stay valid for tools
		// that do not know about it.
		if rest, ok := strings.CutPrefix(line, "#"); ok {
			rest = strings.TrimSpace(rest)
			if af, ok := strings.CutPrefix(rest, "hoyan:allow"); ok && (af == "" || af[0] == ' ' || af[0] == '\t') {
				f := strings.Fields(af)
				if len(f) >= 2 {
					p.dev.Allows = append(p.dev.Allows, Allow{
						Analyzer: f[0],
						Object:   f[1],
						Reason:   strings.Join(f[2:], " "),
					})
				}
				// Malformed directives (missing analyzer/object) are
				// ignored as plain comments — fail-safe: nothing gets
				// suppressed by accident.
			}
		}
		return nil
	}
	if line == "" || line == "!" || strings.HasPrefix(line, "!") {
		return nil
	}
	f := strings.Fields(line)
	head := f[0]
	if topLevel[head] {
		// Leaving any block context.
		p.inBGP, p.inISIS = false, false
		p.closeTerm()
		return p.parseTop(f)
	}
	switch {
	case p.curTerm != nil:
		return p.parseTermLine(f)
	case p.inBGP:
		return p.parseBGPLine(f)
	case p.inISIS:
		return p.parseISISLine(f)
	}
	return p.errf("unknown command %q outside any block", head)
}

func (p *parser) parseTop(f []string) error {
	switch f[0] {
	case "hostname":
		if len(f) != 2 {
			return p.errf("hostname wants 1 argument")
		}
		p.dev.Hostname = f[1]
	case "vendor":
		if len(f) != 2 {
			return p.errf("vendor wants 1 argument")
		}
		p.dev.Vendor = f[1]
	case "router":
		if len(f) >= 3 && f[1] == "bgp" {
			as, err := parseU32(f[2])
			if err != nil {
				return p.errf("bad AS number %q", f[2])
			}
			if p.dev.BGP == nil {
				p.dev.BGP = &BGP{AS: as}
			} else {
				p.dev.BGP.AS = as
			}
			p.inBGP = true
			return nil
		}
		if len(f) == 2 && f[1] == "isis" {
			if p.dev.ISIS == nil {
				p.dev.ISIS = &ISIS{Enabled: true, Level: 2, Metrics: map[string]uint32{}}
			}
			p.dev.ISIS.Enabled = true
			p.inISIS = true
			return nil
		}
		return p.errf("unknown router process %v", f[1:])
	case "ip":
		return p.parseIP(f)
	case "route-policy":
		// route-policy NAME permit|deny SEQ
		if len(f) != 4 {
			return p.errf("route-policy wants NAME permit|deny SEQ")
		}
		name := f[1]
		act, err := parseAction(f[2])
		if err != nil {
			return p.errf("%v", err)
		}
		seq, err := strconv.Atoi(f[3])
		if err != nil {
			return p.errf("bad sequence %q", f[3])
		}
		if _, ok := p.dev.RoutePolicies[name]; !ok {
			p.dev.RoutePolicies[name] = &policy.RoutePolicy{Name: name}
		}
		p.curRP = name
		p.curTerm = &policy.Term{Seq: seq, Action: act}
	case "access-list":
		// access-list NAME permit|deny SRC DST
		if len(f) != 5 {
			return p.errf("access-list wants NAME permit|deny SRC DST")
		}
		name := f[1]
		act, err := parseAction(f[2])
		if err != nil {
			return p.errf("%v", err)
		}
		src, err := parseAnyPrefix(f[3])
		if err != nil {
			return p.errf("bad source %q", f[3])
		}
		dst, err := parseAnyPrefix(f[4])
		if err != nil {
			return p.errf("bad destination %q", f[4])
		}
		acl, ok := p.dev.ACLs[name]
		if !ok {
			acl = &policy.ACL{Name: name}
			p.dev.ACLs[name] = acl
		}
		acl.Rules = append(acl.Rules, policy.ACLRule{
			Seq: 10 * (len(acl.Rules) + 1), Action: act, Src: src, Dst: dst,
		})
	case "interface":
		// interface PEER access-list NAME in|out
		if len(f) != 5 || f[2] != "access-list" || (f[4] != "in" && f[4] != "out") {
			return p.errf("interface wants PEER access-list NAME in|out")
		}
		p.dev.InterfaceACLs[f[1]+"/"+f[4]] = f[3]
	}
	return nil
}

func (p *parser) parseIP(f []string) error {
	if len(f) < 2 {
		return p.errf("bare ip command")
	}
	switch f[1] {
	case "route":
		// ip route PREFIX NEXTHOP [preference N]
		if len(f) != 4 && len(f) != 6 {
			return p.errf("ip route wants PREFIX NEXTHOP [preference N]")
		}
		pfx, err := netaddr.Parse(f[2])
		if err != nil {
			return p.errf("bad prefix %q", f[2])
		}
		sr := StaticRoute{Prefix: pfx, NextHop: f[3]}
		if len(f) == 6 {
			if f[4] != "preference" {
				return p.errf("expected preference, got %q", f[4])
			}
			pref, err := parseU32(f[5])
			if err != nil {
				return p.errf("bad preference %q", f[5])
			}
			sr.Preference = pref
		}
		p.dev.Statics = append(p.dev.Statics, sr)
	case "prefix-list":
		// ip prefix-list NAME permit|deny PREFIX [ge N] [le N]
		if len(f) < 5 {
			return p.errf("ip prefix-list wants NAME permit|deny PREFIX [ge N] [le N]")
		}
		name := f[2]
		act, err := parseAction(f[3])
		if err != nil {
			return p.errf("%v", err)
		}
		pfx, err := netaddr.Parse(f[4])
		if err != nil {
			return p.errf("bad prefix %q", f[4])
		}
		rule := policy.PrefixRule{Action: act, Prefix: pfx}
		rest := f[5:]
		for len(rest) >= 2 {
			n, err := parseU32(rest[1])
			if err != nil || n > 32 {
				return p.errf("bad %s value %q", rest[0], rest[1])
			}
			switch rest[0] {
			case "ge":
				rule.GE = uint8(n)
			case "le":
				rule.LE = uint8(n)
			default:
				return p.errf("unknown prefix-list modifier %q", rest[0])
			}
			rest = rest[2:]
		}
		if len(rest) != 0 {
			return p.errf("trailing tokens %v", rest)
		}
		pl, ok := p.dev.PrefixLists[name]
		if !ok {
			pl = &policy.PrefixList{Name: name}
			p.dev.PrefixLists[name] = pl
		}
		pl.Rules = append(pl.Rules, rule)
	default:
		return p.errf("unknown ip command %q", f[1])
	}
	return nil
}

func (p *parser) parseBGPLine(f []string) error {
	b := p.dev.BGP
	switch f[0] {
	case "router-id":
		if len(f) != 2 {
			return p.errf("router-id wants 1 argument")
		}
		pfx, err := netaddr.Parse(f[1])
		if err != nil {
			return p.errf("bad router-id %q", f[1])
		}
		b.RouterID = pfx.Addr
	case "network":
		if len(f) != 2 {
			return p.errf("network wants PREFIX")
		}
		pfx, err := netaddr.Parse(f[1])
		if err != nil {
			return p.errf("bad prefix %q", f[1])
		}
		if !b.HasNetwork(pfx) {
			b.Networks = append(b.Networks, pfx)
		}
	case "redistribute":
		// redistribute static|isis|connected [route-policy NAME]
		if len(f) != 2 && !(len(f) == 4 && f[2] == "route-policy") {
			return p.errf("redistribute wants PROTO [route-policy NAME]")
		}
		switch f[1] {
		case "static", "isis", "connected":
		default:
			return p.errf("cannot redistribute %q", f[1])
		}
		r := Redistribution{From: f[1]}
		if len(f) == 4 {
			r.Policy = f[3]
		}
		b.Redistribute = append(b.Redistribute, r)
	case "aggregate-address":
		// aggregate-address PREFIX components P1 P2 ...
		if len(f) < 4 || f[2] != "components" {
			return p.errf("aggregate-address wants PREFIX components P1 P2 ...")
		}
		agg, err := netaddr.Parse(f[1])
		if err != nil {
			return p.errf("bad aggregate prefix %q", f[1])
		}
		a := Aggregate{Prefix: agg, SummaryOnly: true}
		for _, s := range f[3:] {
			c, err := netaddr.Parse(s)
			if err != nil {
				return p.errf("bad component prefix %q", s)
			}
			if !agg.Covers(c) {
				return p.errf("component %s outside aggregate %s", c, agg)
			}
			a.Components = append(a.Components, c)
		}
		b.Aggregates = append(b.Aggregates, a)
	case "preference":
		if len(f) != 2 {
			return p.errf("preference wants N")
		}
		v, err := parseU32(f[1])
		if err != nil {
			return p.errf("bad preference %q", f[1])
		}
		b.Preference = v
	case "local-as":
		if len(f) != 2 {
			return p.errf("local-as wants AS")
		}
		v, err := parseU32(f[1])
		if err != nil {
			return p.errf("bad local-as %q", f[1])
		}
		b.LocalAS = v
	case "neighbor":
		return p.parseNeighbor(f)
	default:
		return p.errf("unknown bgp command %q", f[0])
	}
	return nil
}

func (p *parser) parseNeighbor(f []string) error {
	if len(f) < 3 {
		return p.errf("neighbor wants PEER SUBCOMMAND")
	}
	n := p.dev.BGP.Neighbor(f[1])
	switch f[2] {
	case "remote-as":
		if len(f) != 4 {
			return p.errf("remote-as wants AS")
		}
		as, err := parseU32(f[3])
		if err != nil {
			return p.errf("bad AS %q", f[3])
		}
		n.RemoteAS = as
	case "route-policy":
		if len(f) != 5 || (f[4] != "in" && f[4] != "out") {
			return p.errf("neighbor route-policy wants NAME in|out")
		}
		if f[4] == "in" {
			n.InPolicy = f[3]
		} else {
			n.OutPolicy = f[3]
		}
	case "preference":
		if len(f) != 4 {
			return p.errf("neighbor preference wants N")
		}
		v, err := parseU32(f[3])
		if err != nil {
			return p.errf("bad preference %q", f[3])
		}
		n.Preference = v
	case "next-hop-self":
		n.NextHopSelf = true
	case "route-reflector-client":
		n.RouteReflectorClient = true
	case "remove-private-as":
		n.RemovePrivateAS = true
	case "vpn":
		n.VPN = true
	case "allowas-in":
		count := 1
		if len(f) == 4 {
			var err error
			count, err = strconv.Atoi(f[3])
			if err != nil || count < 1 {
				return p.errf("bad allowas-in count %q", f[3])
			}
		}
		n.AllowASIn = count
	default:
		return p.errf("unknown neighbor subcommand %q", f[2])
	}
	return nil
}

func (p *parser) parseISISLine(f []string) error {
	i := p.dev.ISIS
	switch f[0] {
	case "level":
		if len(f) != 2 {
			return p.errf("level wants 1|2|12")
		}
		switch f[1] {
		case "1":
			i.Level = 1
		case "2":
			i.Level = 2
		case "12", "1-2":
			i.Level = 12
		default:
			return p.errf("bad isis level %q", f[1])
		}
	case "metric":
		if len(f) != 3 {
			return p.errf("metric wants PEER N")
		}
		v, err := parseU32(f[2])
		if err != nil || v == 0 {
			return p.errf("bad metric %q", f[2])
		}
		i.Metrics[f[1]] = v
	case "penetrate":
		i.Penetrate = true
	default:
		return p.errf("unknown isis command %q", f[0])
	}
	return nil
}

func (p *parser) parseTermLine(f []string) error {
	t := p.curTerm
	switch f[0] {
	case "match":
		if len(f) < 2 {
			return p.errf("bare match")
		}
		if f[1] != "prefix-list" && len(f) != 3 {
			return p.errf("match %s wants exactly one argument", f[1])
		}
		switch f[1] {
		case "prefix-list":
			if len(f) != 3 {
				return p.errf("match prefix-list wants NAME")
			}
			t.Match.PrefixList = &policy.PrefixList{Name: f[2]}
		case "community":
			c, err := parseCommunity(f[2])
			if err != nil {
				return p.errf("%v", err)
			}
			t.Match.Community = c
		case "no-community":
			c, err := parseCommunity(f[2])
			if err != nil {
				return p.errf("%v", err)
			}
			t.Match.NoCommunity = c
		case "as-path":
			as, err := parseU32(f[2])
			if err != nil {
				return p.errf("bad as %q", f[2])
			}
			t.Match.ASInPath = as
		case "protocol":
			proto, err := parseProtocol(f[2])
			if err != nil {
				return p.errf("%v", err)
			}
			t.Match.Protocol = &proto
		default:
			return p.errf("unknown match %q", f[1])
		}
	case "set":
		if len(f) < 2 {
			return p.errf("bare set")
		}
		switch f[1] {
		case "local-preference", "weight", "med":
			if len(f) != 3 {
				return p.errf("set %s wants exactly one argument", f[1])
			}
		}
		switch f[1] {
		case "local-preference":
			v, err := parseU32(f[2])
			if err != nil {
				return p.errf("bad local-preference %q", f[2])
			}
			t.Set.LocalPref = &v
		case "weight":
			v, err := parseU32(f[2])
			if err != nil {
				return p.errf("bad weight %q", f[2])
			}
			t.Set.Weight = &v
		case "med":
			v, err := parseU32(f[2])
			if err != nil {
				return p.errf("bad med %q", f[2])
			}
			t.Set.MED = &v
		case "community":
			if len(f) < 3 {
				return p.errf("set community wants add|delete|none")
			}
			switch f[2] {
			case "add":
				for _, s := range f[3:] {
					c, err := parseCommunity(s)
					if err != nil {
						return p.errf("%v", err)
					}
					t.Set.AddComms = append(t.Set.AddComms, c)
				}
			case "delete":
				for _, s := range f[3:] {
					c, err := parseCommunity(s)
					if err != nil {
						return p.errf("%v", err)
					}
					t.Set.DelComms = append(t.Set.DelComms, c)
				}
			case "none":
				t.Set.ClearComms = true
			default:
				return p.errf("unknown set community mode %q", f[2])
			}
		case "as-path":
			if len(f) < 4 || f[2] != "prepend" {
				return p.errf("set as-path wants prepend AS...")
			}
			for _, s := range f[3:] {
				as, err := parseU32(s)
				if err != nil {
					return p.errf("bad as %q", s)
				}
				t.Set.PrependAS = append(t.Set.PrependAS, as)
			}
		case "next-hop-self":
			t.Set.NextHopSelf = true
		default:
			return p.errf("unknown set %q", f[1])
		}
	default:
		return p.errf("unknown route-policy line %q", f[0])
	}
	return nil
}

func parseU32(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	return uint32(v), err
}

func parseAction(s string) (policy.Action, error) {
	switch s {
	case "permit":
		return policy.Permit, nil
	case "deny":
		return policy.Deny, nil
	}
	return 0, fmt.Errorf("bad action %q", s)
}

func parseAnyPrefix(s string) (netaddr.Prefix, error) {
	if s == "any" {
		return netaddr.Prefix{}, nil
	}
	return netaddr.Parse(s)
}

func parseCommunity(s string) (route.Community, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, fmt.Errorf("bad community %q (want AS:VALUE)", s)
	}
	as, err1 := strconv.ParseUint(s[:i], 10, 16)
	val, err2 := strconv.ParseUint(s[i+1:], 10, 16)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("bad community %q", s)
	}
	return route.MakeCommunity(uint16(as), uint16(val)), nil
}

func parseProtocol(s string) (route.Protocol, error) {
	switch s {
	case "static":
		return route.Static, nil
	case "connected":
		return route.Connected, nil
	case "isis":
		return route.ISIS, nil
	case "ebgp":
		return route.EBGP, nil
	case "ibgp":
		return route.IBGP, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}
