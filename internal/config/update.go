package config

import (
	"fmt"
	"strings"
)

// Update is an incremental configuration change for one device: the raw
// command lines an operator would type. Lines use the same dialect as full
// configurations, plus a "no " prefix that removes matching statements —
// the template mechanism §9 describes for mapping operator-input command
// lines onto full snapshots.
type Update struct {
	Device string
	Lines  []string
}

// ApplyUpdate merges an incremental update into a snapshot, returning the
// new target configuration (the input is not modified). This implements
// the frontend step of Figure 2: online configuration + proposed change →
// target configuration.
func ApplyUpdate(snapshot *Device, up Update) (*Device, error) {
	target := snapshot.Clone()
	var adds []string
	// Separate removal lines, apply them structurally, batch the rest
	// through the parser on top of the serialized snapshot.
	var ctx string // current block header for removals inside blocks
	for _, raw := range up.Lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "no ") {
			if err := applyRemoval(target, ctx, strings.TrimPrefix(line, "no ")); err != nil {
				return nil, err
			}
			continue
		}
		f := strings.Fields(line)
		if topLevel[f[0]] {
			ctx = f[0]
			if f[0] == "router" && len(f) > 1 {
				ctx = "router " + f[1]
			}
		}
		adds = append(adds, line)
	}
	// Additions: re-parse snapshot text followed by the addition lines.
	// The parser treats repeated statements idempotently (maps and
	// neighbor lookups), so this merges rather than duplicates.
	merged := Write(target) + "\n" + strings.Join(adds, "\n")
	out, err := Parse(merged)
	if err != nil {
		return nil, fmt.Errorf("config: applying update to %s: %w", up.Device, err)
	}
	return out, nil
}

// applyRemoval handles a "no ..." line structurally.
func applyRemoval(d *Device, ctx, stmt string) error {
	f := strings.Fields(stmt)
	if len(f) == 0 {
		return fmt.Errorf("config: empty removal")
	}
	switch f[0] {
	case "neighbor":
		if d.BGP == nil || len(f) < 2 {
			return fmt.Errorf("config: no neighbor needs a peer and a bgp process")
		}
		if len(f) == 2 {
			if !d.BGP.RemoveNeighbor(f[1]) {
				return fmt.Errorf("config: no such neighbor %q", f[1])
			}
			return nil
		}
		// Attribute-level removal: "no neighbor r2 next-hop-self" etc.
		n, ok := d.BGP.FindNeighbor(f[1])
		if !ok {
			return fmt.Errorf("config: no such neighbor %q", f[1])
		}
		switch f[2] {
		case "next-hop-self":
			n.NextHopSelf = false
		case "route-reflector-client":
			n.RouteReflectorClient = false
		case "remove-private-as":
			n.RemovePrivateAS = false
		case "vpn":
			n.VPN = false
		case "allowas-in":
			n.AllowASIn = 0
		case "preference":
			n.Preference = 0
		case "route-policy":
			if len(f) == 5 && f[4] == "in" {
				n.InPolicy = ""
			} else if len(f) == 5 && f[4] == "out" {
				n.OutPolicy = ""
			} else {
				return fmt.Errorf("config: no neighbor route-policy wants NAME in|out")
			}
		default:
			return fmt.Errorf("config: cannot remove neighbor attribute %q", f[2])
		}
	case "network":
		if d.BGP == nil || len(f) != 2 {
			return fmt.Errorf("config: no network wants PREFIX")
		}
		p, err := parseAnyPrefix(f[1])
		if err != nil {
			return err
		}
		for i, n := range d.BGP.Networks {
			if n == p {
				d.BGP.Networks = append(d.BGP.Networks[:i], d.BGP.Networks[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("config: no such network %s", p)
	case "ip":
		if len(f) >= 3 && f[1] == "route" {
			p, err := parseAnyPrefix(f[2])
			if err != nil {
				return err
			}
			for i, sr := range d.Statics {
				if sr.Prefix == p && (len(f) < 4 || sr.NextHop == f[3]) {
					d.Statics = append(d.Statics[:i], d.Statics[i+1:]...)
					return nil
				}
			}
			return fmt.Errorf("config: no such static route %s", p)
		}
		return fmt.Errorf("config: unsupported removal %q", stmt)
	case "route-policy":
		if len(f) != 2 {
			return fmt.Errorf("config: no route-policy wants NAME")
		}
		if _, ok := d.RoutePolicies[f[1]]; !ok {
			return fmt.Errorf("config: no such route-policy %q", f[1])
		}
		delete(d.RoutePolicies, f[1])
	case "access-list":
		if len(f) != 2 {
			return fmt.Errorf("config: no access-list wants NAME")
		}
		if _, ok := d.ACLs[f[1]]; !ok {
			return fmt.Errorf("config: no such access-list %q", f[1])
		}
		delete(d.ACLs, f[1])
		for key, name := range d.InterfaceACLs {
			if name == f[1] {
				delete(d.InterfaceACLs, key)
			}
		}
	case "redistribute":
		if d.BGP == nil || len(f) != 2 {
			return fmt.Errorf("config: no redistribute wants PROTO")
		}
		for i, r := range d.BGP.Redistribute {
			if r.From == f[1] {
				d.BGP.Redistribute = append(d.BGP.Redistribute[:i], d.BGP.Redistribute[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("config: no such redistribution %q", f[1])
	default:
		return fmt.Errorf("config: unsupported removal %q", stmt)
	}
	return nil
}

// Snapshot is the configuration of a whole network keyed by device name,
// plus helpers to apply a batch of updates atomically.
type Snapshot map[string]*Device

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v.Clone()
	}
	return out
}

// Apply returns a new snapshot with all updates applied; the receiver is
// unchanged. Unknown devices are an error (updates target existing
// routers).
func (s Snapshot) Apply(ups []Update) (Snapshot, error) {
	out := s.Clone()
	for _, up := range ups {
		dev, ok := out[up.Device]
		if !ok {
			return nil, fmt.Errorf("config: update targets unknown device %q", up.Device)
		}
		nd, err := ApplyUpdate(dev, up)
		if err != nil {
			return nil, err
		}
		out[up.Device] = nd
	}
	return out, nil
}
