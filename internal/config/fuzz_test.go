package config

import (
	"testing"

	"hoyan/internal/netaddr"
)

// FuzzParse: the parser must never panic, and any accepted configuration
// must round-trip through the canonical writer.
func FuzzParse(f *testing.F) {
	f.Add(sampleConfig)
	f.Add("hostname x\nrouter bgp 1\n neighbor y remote-as 2\n")
	f.Add("route-policy P deny 10\nroute-policy P permit 20\n set weight 1\n")
	f.Add("ip route 10.0.0.0/8 r2 preference 7\nip prefix-list L permit 1.2.3.0/24 ge 25 le 32\n")
	f.Add("router isis\n level 12\n metric q 9\n penetrate\n")
	f.Add("access-list A permit any 0.0.0.0/0\ninterface p access-list A out\n")
	f.Add("!\n# comment\n\nvendor beta\n")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := Parse(text)
		if err != nil {
			return
		}
		out := Write(d)
		d2, err := Parse(out)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, out)
		}
		if Write(d2) != out {
			t.Fatalf("canonical form unstable:\n%s\n---\n%s", out, Write(d2))
		}
	})
}

// FuzzParseTemplates: template parsing must never panic; accepted
// templates must expand without panicking when every param is supplied.
func FuzzParseTemplates(f *testing.F) {
	f.Add("template a(x)\n line {x}\nend\n")
	f.Add("template b()\n static line\nend\n")
	f.Fuzz(func(t *testing.T, text string) {
		lib, err := ParseTemplates(text)
		if err != nil {
			return
		}
		for _, tpl := range lib {
			args := map[string]string{}
			for _, p := range tpl.Params {
				args[p] = "v"
			}
			if _, err := tpl.Expand("dev", args); err != nil {
				t.Fatalf("accepted template fails expansion: %v", err)
			}
		}
	})
}

// FuzzPrefixParse: netaddr parsing never panics and accepted prefixes
// round-trip.
func FuzzPrefixParse(f *testing.F) {
	f.Add("10.0.0.0/8")
	f.Add("255.255.255.255/32")
	f.Add("0.0.0.0/0")
	f.Add("1.2.3.4")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := netaddr.Parse(s)
		if err != nil {
			return
		}
		q, err := netaddr.Parse(p.String())
		if err != nil || q != p {
			t.Fatalf("round trip %q -> %v -> %v (%v)", s, p, q, err)
		}
	})
}
