package config

import (
	"strings"
	"testing"

	"hoyan/internal/netaddr"
	"hoyan/internal/policy"
	"hoyan/internal/route"
)

const sampleConfig = `
hostname r1
vendor alpha
!
router bgp 100
  router-id 1.1.1.1
  preference 20
  local-as 65001
  network 10.0.1.0/24
  network 10.0.2.0/24
  redistribute static route-policy RP_STATIC
  aggregate-address 10.0.1.0/31 components 10.0.1.0/32 10.0.1.1/32
  neighbor r2 remote-as 200
  neighbor r2 route-policy RP_IN in
  neighbor r2 route-policy RP_OUT out
  neighbor r2 preference 30
  neighbor r2 next-hop-self
  neighbor r2 remove-private-as
  neighbor r3 remote-as 100
  neighbor r3 route-reflector-client
  neighbor r3 vpn
  neighbor r3 allowas-in 2
!
router isis
  level 12
  penetrate
  metric r3 25
!
ip route 10.9.0.0/16 r3 preference 1
ip route 0.0.0.0/0 r2
!
route-policy RP_IN permit 10
  match prefix-list PL1
  match community 100:920
  set local-preference 300
  set weight 100
route-policy RP_IN deny 20
route-policy RP_OUT permit 10
  match no-community 100:30
  set community add 100:920
  set as-path prepend 65000 65000
  set med 5
  set next-hop-self
route-policy RP_STATIC permit 10
  match protocol static
!
ip prefix-list PL1 permit 10.0.0.0/8 le 32
ip prefix-list PL1 deny 0.0.0.0/0 le 32
!
access-list ACL1 deny any 10.0.1.0/24
access-list ACL1 permit any any
interface r2 access-list ACL1 out
`

func mustParse(t *testing.T, text string) *Device {
	t.Helper()
	d, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return d
}

func TestParseFull(t *testing.T) {
	d := mustParse(t, sampleConfig)
	if d.Hostname != "r1" || d.Vendor != "alpha" {
		t.Fatalf("identity %q %q", d.Hostname, d.Vendor)
	}
	b := d.BGP
	if b == nil || b.AS != 100 || b.Preference != 20 || b.LocalAS != 65001 {
		t.Fatalf("bgp %+v", b)
	}
	if b.RouterID != netaddr.MustParse("1.1.1.1/32").Addr {
		t.Fatal("router-id")
	}
	if len(b.Networks) != 2 || !b.HasNetwork(netaddr.MustParse("10.0.1.0/24")) {
		t.Fatalf("networks %v", b.Networks)
	}
	if len(b.Redistribute) != 1 || b.Redistribute[0].Policy != "RP_STATIC" {
		t.Fatalf("redistribute %v", b.Redistribute)
	}
	if len(b.Aggregates) != 1 || len(b.Aggregates[0].Components) != 2 {
		t.Fatalf("aggregates %v", b.Aggregates)
	}
	n2, ok := b.FindNeighbor("r2")
	if !ok || n2.RemoteAS != 200 || n2.InPolicy != "RP_IN" || n2.OutPolicy != "RP_OUT" ||
		n2.Preference != 30 || !n2.NextHopSelf || !n2.RemovePrivateAS {
		t.Fatalf("neighbor r2 %+v", n2)
	}
	n3, ok := b.FindNeighbor("r3")
	if !ok || !n3.RouteReflectorClient || !n3.VPN || n3.AllowASIn != 2 {
		t.Fatalf("neighbor r3 %+v", n3)
	}
	if d.ISIS == nil || d.ISIS.Level != 12 || !d.ISIS.Penetrate || d.ISIS.Metrics["r3"] != 25 {
		t.Fatalf("isis %+v", d.ISIS)
	}
	if len(d.Statics) != 2 || d.Statics[0].Preference != 1 || !d.Statics[1].Prefix.IsDefault() {
		t.Fatalf("statics %v", d.Statics)
	}
	rp := d.RoutePolicies["RP_IN"]
	if rp == nil || len(rp.Terms) != 2 {
		t.Fatalf("RP_IN %v", rp)
	}
	t0 := rp.Terms[0]
	if t0.Action != policy.Permit || t0.Seq != 10 ||
		t0.Match.PrefixList == nil || t0.Match.Community != route.MakeCommunity(100, 920) ||
		t0.Set.LocalPref == nil || *t0.Set.LocalPref != 300 || *t0.Set.Weight != 100 {
		t.Fatalf("RP_IN term0 %+v", t0)
	}
	// Prefix list reference must be resolved to the parsed list.
	if len(t0.Match.PrefixList.Rules) != 2 {
		t.Fatal("prefix-list reference not resolved")
	}
	out := d.RoutePolicies["RP_OUT"].Terms[0]
	if out.Match.NoCommunity != route.MakeCommunity(100, 30) || len(out.Set.AddComms) != 1 ||
		len(out.Set.PrependAS) != 2 || out.Set.MED == nil || !out.Set.NextHopSelf {
		t.Fatalf("RP_OUT %+v", out)
	}
	st := d.RoutePolicies["RP_STATIC"].Terms[0]
	if st.Match.Protocol == nil || *st.Match.Protocol != route.Static {
		t.Fatal("protocol match")
	}
	acl := d.ACLs["ACL1"]
	if acl == nil || len(acl.Rules) != 2 || acl.Rules[0].Action != policy.Deny {
		t.Fatalf("acl %+v", acl)
	}
	if d.InterfaceACLs["r2/out"] != "ACL1" {
		t.Fatal("interface binding")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"garbage line",
		"router ospf",
		"router bgp notanumber",
		"ip route 10.0.0.0/8",                   // missing nexthop
		"ip route bad/8 r2",                     // bad prefix
		"route-policy RP permit ten",            // bad seq
		"route-policy RP banana 10",             // bad action
		"access-list A permit any",              // missing dst
		"interface r2 access-list ACL sideways", // bad direction
		"router bgp 1\nneighbor r2 frobnicate",  // bad neighbor subcommand
		"router bgp 1\naggregate-address 10.0.0.0/8 components 11.0.0.0/8", // component outside
		"router isis\nlevel 9",                              // bad level
		"router bgp 1\nneighbor r2 route-policy MISSING in", // validation: unknown policy
		"route-policy RP permit 10\nmatch prefix-list NOPE", // validation: unknown prefix list
		"interface r2 access-list NOPE in",                  // validation: unknown acl
		"ip prefix-list PL permit 10.0.0.0/8 ge 40",         // bad ge
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) must fail", c)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := Parse("hostname r1\ngarbage here\n")
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 2 {
		t.Fatalf("want ParseError at line 2, got %v", err)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("error text %q", pe.Error())
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	d := mustParse(t, sampleConfig)
	text := Write(d)
	d2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	text2 := Write(d2)
	if text != text2 {
		t.Fatalf("canonical form not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := mustParse(t, sampleConfig)
	c := d.Clone()
	c.BGP.Neighbor("r9").RemoteAS = 999
	c.Statics = append(c.Statics, StaticRoute{Prefix: netaddr.MustParse("1.0.0.0/8"), NextHop: "r2"})
	c.RoutePolicies["RP_IN"].Terms[0].Seq = 777
	if _, ok := d.BGP.FindNeighbor("r9"); ok {
		t.Fatal("clone leaked neighbor")
	}
	if len(d.Statics) != 2 {
		t.Fatal("clone leaked statics")
	}
	if d.RoutePolicies["RP_IN"].Terms[0].Seq == 777 {
		t.Fatal("clone leaked policy terms")
	}
}

func TestConfigBlocks(t *testing.T) {
	d := mustParse(t, sampleConfig)
	blocks := d.ConfigBlocks()
	want := []string{"access-list/ACL1", "aggregate/10.0.1.0/31", "bgp", "isis",
		"neighbor/r2", "neighbor/r3", "redistribute/static",
		"route-policy/RP_IN", "route-policy/RP_OUT", "route-policy/RP_STATIC", "static"}
	if len(blocks) != len(want) {
		t.Fatalf("blocks %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks[%d] = %q, want %q", i, blocks[i], want[i])
		}
	}
}

func TestApplyUpdateAdditions(t *testing.T) {
	d := mustParse(t, sampleConfig)
	up := Update{Device: "r1", Lines: []string{
		"router bgp 100",
		"  network 10.0.3.0/24",
		"  neighbor r4 remote-as 400",
	}}
	nd, err := ApplyUpdate(d, up)
	if err != nil {
		t.Fatal(err)
	}
	if !nd.BGP.HasNetwork(netaddr.MustParse("10.0.3.0/24")) {
		t.Fatal("network not added")
	}
	if _, ok := nd.BGP.FindNeighbor("r4"); !ok {
		t.Fatal("neighbor not added")
	}
	// Original untouched.
	if d.BGP.HasNetwork(netaddr.MustParse("10.0.3.0/24")) {
		t.Fatal("ApplyUpdate mutated the snapshot")
	}
	// Existing statements preserved.
	if n2, _ := nd.BGP.FindNeighbor("r2"); n2.InPolicy != "RP_IN" {
		t.Fatal("existing neighbor config lost")
	}
}

func TestApplyUpdateModifiesExisting(t *testing.T) {
	d := mustParse(t, sampleConfig)
	// The §7.1 scenario: change static preference 1 → 150.
	up := Update{Device: "r1", Lines: []string{
		"no ip route 10.9.0.0/16 r3",
		"ip route 10.9.0.0/16 r3 preference 150",
	}}
	nd, err := ApplyUpdate(d, up)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, sr := range nd.Statics {
		if sr.Prefix == netaddr.MustParse("10.9.0.0/16") {
			found = true
			if sr.Preference != 150 {
				t.Fatalf("preference = %d, want 150", sr.Preference)
			}
		}
	}
	if !found {
		t.Fatal("static route lost")
	}
}

func TestApplyUpdateRemovals(t *testing.T) {
	d := mustParse(t, sampleConfig)
	up := Update{Device: "r1", Lines: []string{
		"no neighbor r3",
		"no network 10.0.2.0/24",
		"no redistribute static",
		"no neighbor r2 next-hop-self",
	}}
	nd, err := ApplyUpdate(d, up)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nd.BGP.FindNeighbor("r3"); ok {
		t.Fatal("neighbor r3 not removed")
	}
	if nd.BGP.HasNetwork(netaddr.MustParse("10.0.2.0/24")) {
		t.Fatal("network not removed")
	}
	if len(nd.BGP.Redistribute) != 0 {
		t.Fatal("redistribute not removed")
	}
	if n2, _ := nd.BGP.FindNeighbor("r2"); n2.NextHopSelf {
		t.Fatal("next-hop-self not cleared")
	}
}

func TestApplyUpdateRemovalErrors(t *testing.T) {
	d := mustParse(t, sampleConfig)
	for _, lines := range [][]string{
		{"no neighbor r99"},
		{"no network 99.0.0.0/8"},
		{"no ip route 99.0.0.0/8 r2"},
		{"no route-policy NOPE"},
		{"no access-list NOPE"},
		{"no redistribute isis"},
		{"no frobnicate"},
	} {
		if _, err := ApplyUpdate(d, Update{Device: "r1", Lines: lines}); err == nil {
			t.Errorf("removal %v must fail", lines)
		}
	}
}

func TestSnapshotApply(t *testing.T) {
	d := mustParse(t, sampleConfig)
	snap := Snapshot{"r1": d}
	out, err := snap.Apply([]Update{{Device: "r1", Lines: []string{"router bgp 100", "network 77.0.0.0/8"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !out["r1"].BGP.HasNetwork(netaddr.MustParse("77.0.0.0/8")) {
		t.Fatal("snapshot apply")
	}
	if snap["r1"].BGP.HasNetwork(netaddr.MustParse("77.0.0.0/8")) {
		t.Fatal("snapshot mutated")
	}
	if _, err := snap.Apply([]Update{{Device: "rX"}}); err == nil {
		t.Fatal("unknown device must fail")
	}
}

func TestRemoveACLUnbindsInterfaces(t *testing.T) {
	d := mustParse(t, sampleConfig)
	nd, err := ApplyUpdate(d, Update{Device: "r1", Lines: []string{"no access-list ACL1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(nd.ACLs) != 0 || len(nd.InterfaceACLs) != 0 {
		t.Fatal("ACL removal must unbind interfaces")
	}
}

func TestResolvedPolicy(t *testing.T) {
	d := mustParse(t, sampleConfig)
	if p, err := d.ResolvedPolicy(""); p != nil || err != nil {
		t.Fatal("empty name is nil policy")
	}
	if p, err := d.ResolvedPolicy("RP_IN"); err != nil || p == nil {
		t.Fatal("known policy")
	}
	if _, err := d.ResolvedPolicy("NOPE"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
