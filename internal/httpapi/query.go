package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hoyan"
	"hoyan/internal/qc"
)

// The query plane serves sub-millisecond answers from compiled sweep
// results (internal/qc) instead of simulating. Reads are lock-free: the
// active snapshot is an atomic pointer, per-request evaluation state
// comes from a per-snapshot pool, and the registry mutex is only taken
// by publish/activate/GC — never on the query path. A query that loads
// the active pointer just before a switch answers from the snapshot it
// loaded; that is the staleness contract (DESIGN.md, "Query plane").

// snapEntry is one published compiled snapshot plus its drain
// bookkeeping. refs counts in-flight queries; a retired entry leaves
// the registry once refs drains to zero (readers that raced the switch
// still hold a valid pointer — removal only drops the registry's
// reference, the Go runtime reclaims the memory when the last reader
// returns).
type snapEntry struct {
	id        string
	snap      *qc.Snapshot
	published time.Time
	refs      atomic.Int64
	retired   atomic.Bool
	pool      sync.Pool // *evalState sized for this snapshot
}

// evalState is the per-request scratch a query borrows: one failure-set
// bitset and one evaluation array, both pre-sized so the eval loop
// allocates nothing.
type evalState struct {
	fs *qc.FailureSet
	sc *qc.Scratch
}

func (e *snapEntry) getState() *evalState {
	st := e.pool.Get().(*evalState)
	st.fs.Reset()
	return st
}

// queryPlane is the snapshot registry.
type queryPlane struct {
	active atomic.Pointer[snapEntry]

	mu      sync.Mutex
	seq     int
	entries map[string]*snapEntry
	order   []string // publication order, for deterministic listings
}

func newQueryPlane() *queryPlane {
	return &queryPlane{entries: map[string]*snapEntry{}}
}

// publish compiles a store and registers the snapshot; when activate is
// set it also becomes the serving snapshot atomically. Compilation runs
// outside the registry lock — queries against the current snapshot are
// never stalled by a publish.
func (q *queryPlane) publish(st *hoyan.ResultStore, activate bool) (*snapEntry, error) {
	snap, err := qc.CompileStore(st)
	if err != nil {
		return nil, err
	}
	e := &snapEntry{snap: snap, published: time.Now()}
	e.pool.New = func() any {
		return &evalState{fs: snap.NewFailureSet(), sc: snap.NewScratch()}
	}
	q.mu.Lock()
	q.seq++
	e.id = fmt.Sprintf("snap-%d", q.seq)
	q.entries[e.id] = e
	q.order = append(q.order, e.id)
	q.mu.Unlock()
	if activate {
		q.activate(e)
	}
	return e, nil
}

// activate switches serving to e and retires the previous snapshot.
func (q *queryPlane) activate(e *snapEntry) {
	old := q.active.Swap(e)
	e.retired.Store(false)
	if old != nil && old != e {
		old.retired.Store(true)
	}
	q.gc()
}

// activateID switches by snapshot id.
func (q *queryPlane) activateID(id string) error {
	q.mu.Lock()
	e, ok := q.entries[id]
	q.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown snapshot %q", id)
	}
	q.activate(e)
	return nil
}

// acquire pins the active snapshot for one query.
func (q *queryPlane) acquire() *snapEntry {
	e := q.active.Load()
	if e == nil {
		return nil
	}
	e.refs.Add(1)
	return e
}

// release drops a query's pin and GCs retired snapshots that drained.
func (q *queryPlane) release(e *snapEntry, st *evalState) {
	e.pool.Put(st)
	if e.refs.Add(-1) == 0 && e.retired.Load() {
		q.gc()
	}
}

// gc drops retired, drained snapshots from the registry.
func (q *queryPlane) gc() {
	q.mu.Lock()
	defer q.mu.Unlock()
	kept := q.order[:0]
	for _, id := range q.order {
		e := q.entries[id]
		if e.retired.Load() && e.refs.Load() == 0 {
			delete(q.entries, id)
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

// SnapshotInfo is one registry entry in GET /v1/snapshots.
type SnapshotInfo struct {
	ID        string `json:"id"`
	Active    bool   `json:"active"`
	Retired   bool   `json:"retired,omitempty"`
	Published string `json:"published"`
	K         int    `json:"k"`
	Classes   int    `json:"classes"`
	Prefixes  int    `json:"prefixes"`
	Programs  int    `json:"programs"`
	Instrs    int    `json:"instrs"`
	Links     int    `json:"links"`
	CompileMS int64  `json:"compile_ms"`
}

func (q *queryPlane) list() []SnapshotInfo {
	active := q.active.Load()
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []SnapshotInfo
	for _, id := range q.order {
		e := q.entries[id]
		st := e.snap.Stats
		out = append(out, SnapshotInfo{
			ID:        e.id,
			Active:    e == active,
			Retired:   e.retired.Load(),
			Published: e.published.UTC().Format(time.RFC3339),
			K:         e.snap.K,
			Classes:   st.Classes,
			Prefixes:  st.Prefixes,
			Programs:  st.Programs,
			Instrs:    st.Instrs,
			Links:     st.Links,
			CompileMS: st.CompileTime.Milliseconds(),
		})
	}
	return out
}

// PublishStore compiles a result store and atomically makes it the
// serving snapshot — the programmatic face of POST /v1/snapshots, used
// by hoyand's -store flag at boot and by /v1/resweep after commit.
func (s *Service) PublishStore(st *hoyan.ResultStore) (string, error) {
	e, err := s.query.publish(st, true)
	if err != nil {
		return "", err
	}
	return e.id, nil
}

// SnapshotPublishRequest is the JSON body of POST /v1/snapshots. With a
// path, the store is loaded from disk; without one, the service's held
// baseline (captured by the last resweep) is published. Activate
// defaults to true; set it false to stage a snapshot for a later
// /v1/snapshots/activate.
type SnapshotPublishRequest struct {
	Path     string `json:"path,omitempty"`
	Activate *bool  `json:"activate,omitempty"`
}

func (s *Service) handleSnapshotPublish(w http.ResponseWriter, r *http.Request) {
	var req SnapshotPublishRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		badRequest(w, "bad body: %v", err)
		return
	}
	var st *hoyan.ResultStore
	if req.Path != "" {
		loaded, err := hoyan.LoadResultStore(req.Path)
		if err != nil {
			var ce *hoyan.CorruptStoreError
			if errors.As(err, &ce) && ce.Usable {
				// Quarantined classes just drop out of the snapshot.
				st = loaded
			} else {
				badRequest(w, "load store: %v", err)
				return
			}
		} else {
			st = loaded
		}
	} else {
		s.mu.Lock()
		st = s.baseline
		s.mu.Unlock()
		if st == nil {
			badRequest(w, "no held baseline; run /v1/resweep first or pass a path")
			return
		}
	}
	activate := req.Activate == nil || *req.Activate
	e, err := s.query.publish(st, activate)
	if err != nil {
		badRequest(w, "compile store: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": e.id, "active": activate})
}

func (s *Service) handleSnapshotList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"snapshots": s.query.list()})
}

// SnapshotActivateRequest is the JSON body of POST /v1/snapshots/activate.
type SnapshotActivateRequest struct {
	ID string `json:"id"`
}

func (s *Service) handleSnapshotActivate(w http.ResponseWriter, r *http.Request) {
	var req SnapshotActivateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		badRequest(w, "bad body: %v", err)
		return
	}
	if err := s.query.activateID(req.ID); err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"active": req.ID})
}

// QueryResponse is the JSON body of GET /v1/query, with kind-dependent
// fields populated.
type QueryResponse struct {
	Kind     string `json:"kind"`
	Snapshot string `json:"snapshot"`
	Prefix   string `json:"prefix,omitempty"`
	Router   string `json:"router,omitempty"`
	// Failed echoes the parsed failure set in canonical link names.
	Failed    []string `json:"failed,omitempty"`
	Reachable *bool    `json:"reachable,omitempty"`
	// MinFailures is -1 when the intent survives the sweep's whole
	// failure budget (values beyond K are unknowable from pruned
	// conditions, matching /v1/route's convention).
	MinFailures *int   `json:"min_failures,omitempty"`
	Tolerant    bool   `json:"tolerant,omitempty"`
	Link        string `json:"link,omitempty"`
	// Classes/Prefixes answer impact queries: how many behavior classes
	// mention the link, and the affected prefixes (the classes' members,
	// fanned out via the partition).
	Classes  int      `json:"classes,omitempty"`
	Prefixes []string `json:"prefixes,omitempty"`
}

// handleQuery answers from the active compiled snapshot, never from
// simulation:
//
//	GET /v1/query?kind=reach&prefix=P&router=R[&failed=a~b,c~d]
//	GET /v1/query?kind=minfail&prefix=P[&router=R]
//	GET /v1/query?kind=impact&link=a~b
func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	e := s.query.acquire()
	if e == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "no snapshot published; run /v1/resweep or POST /v1/snapshots"})
		return
	}
	st := e.getState()
	defer s.query.release(e, st)
	snap := e.snap

	qv := r.URL.Query()
	resp := QueryResponse{Kind: qv.Get("kind"), Snapshot: e.id}
	switch resp.Kind {
	case "reach":
		cls, root, ok := resolveTarget(w, snap, qv.Get("prefix"), qv.Get("router"), true)
		if !ok {
			return
		}
		resp.Prefix, resp.Router = qv.Get("prefix"), qv.Get("router")
		if !parseFailed(w, snap, qv.Get("failed"), st.fs, &resp.Failed) {
			return
		}
		v := cls.Progs[root].Eval(st.fs, st.sc)
		resp.Reachable = &v
	case "minfail":
		router := qv.Get("router")
		cls, root, ok := resolveTarget(w, snap, qv.Get("prefix"), router, router != "")
		if !ok {
			return
		}
		resp.Prefix, resp.Router = qv.Get("prefix"), router
		min := cls.ClassMinFail
		if router != "" {
			if !cls.ReachUp[root] {
				min = 0
			} else {
				min = cls.MinFail[root]
			}
		}
		mf := min
		if min > snap.K {
			mf = -1
			resp.Tolerant = true
		}
		resp.MinFailures = &mf
	case "impact":
		name := qv.Get("link")
		v, ok := snap.ResolveLink(name)
		if !ok {
			badRequest(w, "unknown link %q (want an a~b pair from the baseline topology)", name)
			return
		}
		resp.Link = snap.LinkName(v)
		var prefixes []string
		for _, cls := range snap.Impacted(v) {
			resp.Classes++
			prefixes = append(prefixes, cls.Members...)
		}
		sort.Strings(prefixes)
		resp.Prefixes = prefixes
	default:
		badRequest(w, "unknown kind %q (want reach, minfail, or impact)", resp.Kind)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveTarget maps prefix/router query params onto a compiled class
// and root index, writing the 400 itself on failure. needRouter
// distinguishes per-router queries from class-aggregate ones.
func resolveTarget(w http.ResponseWriter, snap *qc.Snapshot, prefix, router string, needRouter bool) (*qc.Class, int, bool) {
	cls, ok := snap.ClassOf(prefix)
	if !ok {
		badRequest(w, "prefix %q is not in the active snapshot", prefix)
		return nil, 0, false
	}
	if !needRouter {
		return cls, -1, true
	}
	root, ok := cls.Router(router)
	if !ok {
		badRequest(w, "router %q is not a BGP speaker in the active snapshot", router)
		return nil, 0, false
	}
	return cls, root, true
}

// parseFailed fills fs from a comma-separated link list, enforcing the
// snapshot's exactness contract: stored conditions were pruned past the
// sweep budget K, so failure sets larger than K are refused rather than
// answered approximately.
func parseFailed(w http.ResponseWriter, snap *qc.Snapshot, raw string, fs *qc.FailureSet, echo *[]string) bool {
	if raw == "" {
		return true
	}
	for _, name := range strings.Split(raw, ",") {
		v, ok := snap.ResolveLink(strings.TrimSpace(name))
		if !ok {
			badRequest(w, "unknown link %q in failed set", name)
			return false
		}
		if fs.Has(v) {
			continue // same link named twice (either endpoint order)
		}
		fs.Add(v)
		*echo = append(*echo, snap.LinkName(v))
	}
	if fs.Len() > snap.K {
		badRequest(w, "%d failed links exceeds the sweep budget K=%d; answers past the budget were pruned at sweep time — rerun the sweep with a larger K", fs.Len(), snap.K)
		return false
	}
	sort.Strings(*echo)
	return true
}
