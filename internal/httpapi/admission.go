// Admission control: the service treats every sweep (/v1/resweep) as a
// session and bounds how many run at once and how much queued work each
// may carry. Saturation is a 429 with a Retry-After hint — the client's
// cue to back off, not an error — and a draining service (SIGTERM) is a
// 503: in-flight sweeps finish and journal, new work is refused.
package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// DefaultMaxSessions is the default cap on concurrently running sweep
// sessions.
const DefaultMaxSessions = 2

// errAdmission is a typed admission refusal carrying the HTTP status and
// Retry-After hint to serve.
type errAdmission struct {
	status     int
	retryAfter int // seconds; 0 omits the header
	msg        string
}

func (e *errAdmission) Error() string { return e.msg }

// admission is the session registry: who is sweeping, the limits, and
// the drain latch.
type admission struct {
	mu          sync.Mutex
	cond        *sync.Cond
	maxSessions int
	maxJobs     int // per-session queued-job bound; 0 = unlimited
	nextID      int
	active      map[string]*sessionInfo
	draining    bool
}

// sessionInfo describes one admitted sweep session.
type sessionInfo struct {
	ID      string    `json:"id"`
	Jobs    int       `json:"jobs"` // queued classes at admission
	Started time.Time `json:"started"`
}

func (a *admission) init() {
	if a.cond == nil {
		a.cond = sync.NewCond(&a.mu)
	}
	if a.active == nil {
		a.active = map[string]*sessionInfo{}
	}
	if a.maxSessions == 0 {
		a.maxSessions = DefaultMaxSessions
	}
}

// SetSessionLimits bounds concurrent sweep sessions and each session's
// queued jobs (its class count at admission). maxSessions <= 0 keeps
// DefaultMaxSessions; maxJobs <= 0 means unlimited.
func (s *Service) SetSessionLimits(maxSessions, maxJobs int) {
	s.adm.mu.Lock()
	defer s.adm.mu.Unlock()
	s.adm.init()
	if maxSessions > 0 {
		s.adm.maxSessions = maxSessions
	}
	if maxJobs > 0 {
		s.adm.maxJobs = maxJobs
	} else {
		s.adm.maxJobs = 0
	}
}

// admit registers a sweep session with the given queued-job count. It
// refuses with 503 while draining, 429 when the session table is full,
// and 429 when jobs exceeds the per-session bound (that one is permanent
// for this request, so no Retry-After).
func (a *admission) admit(jobs int) (*sessionInfo, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.init()
	if a.draining {
		return nil, &errAdmission{status: http.StatusServiceUnavailable,
			msg: "service is draining; no new sweeps"}
	}
	if a.maxJobs > 0 && jobs > a.maxJobs {
		return nil, &errAdmission{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("sweep carries %d queued jobs, above the per-session bound %d", jobs, a.maxJobs)}
	}
	if len(a.active) >= a.maxSessions {
		// The hint is the age of the oldest running session, clamped to
		// [1s, 60s]: young sessions suggest a short wait, old ones that
		// the pool is busy for a while.
		retry := 1
		for _, si := range a.active {
			if age := int(time.Since(si.Started).Seconds()); age > retry {
				retry = age
			}
		}
		if retry > 60 {
			retry = 60
		}
		return nil, &errAdmission{status: http.StatusTooManyRequests, retryAfter: retry,
			msg: fmt.Sprintf("%d sweep sessions already running (max %d)", len(a.active), a.maxSessions)}
	}
	a.nextID++
	si := &sessionInfo{ID: fmt.Sprintf("sweep-%d", a.nextID), Jobs: jobs, Started: time.Now()}
	a.active[si.ID] = si
	return si, nil
}

// release retires a session and wakes any drain waiter.
func (a *admission) release(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.active, id)
	if a.cond != nil {
		a.cond.Broadcast()
	}
}

// Drain stops admitting new sweep sessions and waits for the running
// ones to finish (they complete and journal normally). It returns early
// with the context's error if ctx expires first; the service stays
// draining either way, so a timed-out drain still refuses new work.
func (s *Service) Drain(ctx context.Context) error {
	a := &s.adm
	a.mu.Lock()
	a.init()
	a.draining = true
	a.mu.Unlock()

	// A context watcher wakes the cond wait when the deadline passes.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		case <-stop:
		}
	}()

	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.active) > 0 && ctx.Err() == nil {
		//lint:allow locksift sync.Cond.Wait atomically releases a.mu while blocked and reacquires it before returning
		a.cond.Wait()
	}
	return ctx.Err()
}

// SessionsResponse is the JSON body of GET /v1/sessions.
type SessionsResponse struct {
	MaxSessions int           `json:"max_sessions"`
	MaxJobs     int           `json:"max_jobs,omitempty"`
	Draining    bool          `json:"draining"`
	Sessions    []sessionInfo `json:"sessions"`
}

func (s *Service) handleSessions(w http.ResponseWriter, r *http.Request) {
	a := &s.adm
	a.mu.Lock()
	a.init()
	resp := SessionsResponse{
		MaxSessions: a.maxSessions,
		MaxJobs:     a.maxJobs,
		Draining:    a.draining,
		Sessions:    []sessionInfo{},
	}
	for _, si := range a.active {
		resp.Sessions = append(resp.Sessions, *si)
	}
	a.mu.Unlock()
	sort.Slice(resp.Sessions, func(i, j int) bool { return resp.Sessions[i].ID < resp.Sessions[j].ID })
	writeJSON(w, http.StatusOK, resp)
}
