package httpapi

import (
	"net/http/httptest"
	"testing"

	"hoyan/internal/gen"
)

// TestVetEndpoint pins GET /v1/vet against the held model: a clean
// generated WAN is finding-free (the analyzers' false-positive
// contract), analyzer selection narrows the run, and an unknown
// analyzer is a 400, not a 500.
func TestVetEndpoint(t *testing.T) {
	w, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(w.Net, w.Snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var out VetResponse
	if code := get(t, srv, "/v1/vet", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Findings != 0 {
		t.Fatalf("clean WAN has %d findings: %+v", out.Findings, out.Diagnostics)
	}
	if out.Diagnostics == nil {
		t.Fatal("diagnostics must serialize as a list, not null")
	}

	if code := get(t, srv, "/v1/vet?only=cutsound", &out); code != 200 || out.Findings != 0 {
		t.Fatalf("only=cutsound: status %d, findings %d", code, out.Findings)
	}
	if code := get(t, srv, "/v1/vet?only=nosuch", nil); code != 400 {
		t.Fatalf("unknown analyzer status %d, want 400", code)
	}
}
