package httpapi

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"testing"

	"hoyan/internal/behavior"
	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/logic"
)

// resweep seeds the query plane through the public API and returns the
// published snapshot id.
func resweep(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	var resp ResweepResponse
	if code := post(t, srv, "/v1/resweep", "", &resp); code != 200 {
		t.Fatalf("resweep status %d", code)
	}
	if resp.SnapshotError != "" {
		t.Fatalf("resweep failed to publish its store: %s", resp.SnapshotError)
	}
	if resp.Snapshot == "" {
		t.Fatal("resweep published no snapshot")
	}
	return resp.Snapshot
}

func TestQueryPlaneUnavailableBeforePublish(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()
	var eb errorBody
	if code := get(t, srv, "/v1/query?kind=reach&prefix=10.0.0.0/8&router=D", &eb); code != 503 {
		t.Fatalf("query before any snapshot: status %d, want 503", code)
	}
}

func TestSnapshotRegistryLifecycle(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()

	first := resweep(t, srv)
	var list struct {
		Snapshots []SnapshotInfo `json:"snapshots"`
	}
	if code := get(t, srv, "/v1/snapshots", &list); code != 200 || len(list.Snapshots) != 1 {
		t.Fatalf("after first publish: %d snapshots (%d)", len(list.Snapshots), code)
	}
	if s0 := list.Snapshots[0]; s0.ID != first || !s0.Active || s0.Classes == 0 || s0.Links == 0 {
		t.Fatalf("first snapshot entry %+v", list.Snapshots[0])
	}

	// A second resweep publishes and activates a new snapshot; the old
	// one has no in-flight queries, so it must be GC'd from the registry.
	second := resweep(t, srv)
	if second == first {
		t.Fatal("second resweep reused the first snapshot id")
	}
	list.Snapshots = nil
	get(t, srv, "/v1/snapshots", &list)
	if len(list.Snapshots) != 1 || list.Snapshots[0].ID != second {
		t.Fatalf("old snapshot not GC'd: %+v", list.Snapshots)
	}

	// Staging (activate=false) registers without switching; explicit
	// activate flips atomically.
	var pub struct {
		ID     string `json:"id"`
		Active bool   `json:"active"`
	}
	if code := post(t, srv, "/v1/snapshots", `{"activate": false}`, &pub); code != 200 || pub.Active {
		t.Fatalf("stage publish: %+v (%d)", pub, code)
	}
	list.Snapshots = nil
	get(t, srv, "/v1/snapshots", &list)
	if len(list.Snapshots) != 2 {
		t.Fatalf("staged snapshot missing: %+v", list.Snapshots)
	}
	if code := post(t, srv, "/v1/snapshots/activate", fmt.Sprintf(`{"id":%q}`, pub.ID), nil); code != 200 {
		t.Fatalf("activate status %d", code)
	}
	var q QueryResponse
	if code := get(t, srv, "/v1/query?kind=impact&link=C~D", &q); code != 200 || q.Snapshot != pub.ID {
		t.Fatalf("query not served from activated snapshot: %+v (%d)", q, code)
	}
	if code := post(t, srv, "/v1/snapshots/activate", `{"id":"snap-999"}`, nil); code != 400 {
		t.Fatalf("activating an unknown id: status %d, want 400", code)
	}
}

func TestQueryEndpointValidation(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()
	resweep(t, srv)

	for _, tc := range []struct{ path, why string }{
		{"/v1/query?kind=teleport", "unknown kind"},
		{"/v1/query?kind=reach&prefix=10.9.9.9/32&router=D", "unknown prefix"},
		{"/v1/query?kind=reach&prefix=10.0.0.0/8&router=Z", "unknown router"},
		{"/v1/query?kind=reach&prefix=10.0.0.0/8&router=D&failed=X~Y", "unknown link"},
		{"/v1/query?kind=reach&prefix=10.0.0.0/8&router=D&failed=A~B,A~C,B~C,C~D", "failure set over budget"},
		{"/v1/query?kind=impact&link=nonsense", "unparsable link"},
	} {
		if code := get(t, srv, tc.path, nil); code != 400 {
			t.Errorf("%s: status %d, want 400", tc.why, code)
		}
	}

	// Budget boundary: exactly K failed links must be answered — and the
	// whole western triangle down disconnects the announcer A.
	var q QueryResponse
	if code := get(t, srv, "/v1/query?kind=reach&prefix=10.0.0.0/8&router=D&failed=A~B,A~C,B~C", &q); code != 200 {
		t.Fatalf("K-sized failure set refused: %d", code)
	}
	if q.Reachable == nil || *q.Reachable {
		t.Fatalf("A is disconnected with all three western links down: %+v", q)
	}
	// A 2-link failure that spares A~C keeps the detour alive.
	var qUp QueryResponse
	get(t, srv, "/v1/query?kind=reach&prefix=10.0.0.0/8&router=D&failed=A~B,B~C", &qUp)
	if qUp.Reachable == nil || !*qUp.Reachable {
		t.Fatalf("D must still reach 10/8 over A~C,C~D: %+v", qUp)
	}
	// Link names normalize to canonical order however the caller writes
	// them.
	var q2 QueryResponse
	get(t, srv, "/v1/query?kind=reach&prefix=10.0.0.0/8&router=D&failed=D~C", &q2)
	if len(q2.Failed) != 1 || q2.Failed[0] != "C~D" {
		t.Fatalf("failed echo not canonical: %+v", q2.Failed)
	}
	if q2.Reachable == nil || *q2.Reachable {
		t.Fatal("D survives losing its only link")
	}
}

// TestQueryMatchesSimulation is the equivalence pin: on gen.Medium, for
// K=1 and K=3, every /v1/query answer must agree with a fresh
// simulation of the same model — reach under sampled failure sets,
// min-failures per router and per class, and impact soundness (a link
// whose death semantically changes a fresh condition must appear in the
// affected set).
func TestQueryMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("gen.Medium sweep ×2 in -short mode")
	}
	for _, k := range []int{1, 3} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			w, err := gen.Generate(gen.Medium())
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(w.Net, w.Snap, k)
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(s.Handler())
			defer srv.Close()
			resweep(t, srv)

			// The fresh simulation: same model assembly and options as the
			// service, but a simulator the query plane never touches.
			m, err := core.Assemble(w.Net, w.Snap, behavior.TrueProfiles())
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.K = k
			sim := core.NewSimulator(m, opts)

			// BGP speakers, and the sampled routers queries run against.
			var speakers []string
			for _, n := range w.Net.Nodes() {
				if m.Configs[n.ID].BGP != nil {
					speakers = append(speakers, n.Name)
				}
			}
			routers := speakers
			if len(routers) > 6 {
				routers = routers[:6]
			}

			links := w.Net.Links()
			rng := rand.New(rand.NewSource(7))
			failureSets := [][]string{nil}
			for i := 0; i < 4; i++ {
				var fsNames []string
				for j := 0; j < 1+rng.Intn(k); j++ {
					l := links[rng.Intn(len(links))]
					fsNames = append(fsNames, w.Net.Node(l.A).Name+"~"+w.Net.Node(l.B).Name)
				}
				failureSets = append(failureSets, fsNames)
			}

			for _, cls := range m.Classes() {
				p := cls.Rep
				res, err := sim.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				pt := core.AnyRouteTo(p)
				// Every member of the class must answer identically to the
				// representative — the fan-out the partition promises. Spot
				// check with the last member.
				targets := []string{p.String()}
				if n := len(cls.Members); n > 1 {
					targets = append(targets, cls.Members[n-1].String())
				}

				for _, router := range routers {
					node, _ := w.Net.NodeByName(router)
					cond := res.ReachCond(node.ID, pt)

					for _, fsNames := range failureSets {
						asn := logic.Assignment{}
						seen := map[string]bool{}
						for _, name := range fsNames {
							for _, l := range links {
								ln := w.Net.Node(l.A).Name + "~" + w.Net.Node(l.B).Name
								if ln == name && !seen[ln] {
									asn[logic.Var(l.ID)] = false
									seen[ln] = true
								}
							}
						}
						want := sim.F.Eval(cond, asn)

						q := url.Values{"kind": {"reach"}, "prefix": {targets[len(targets)-1]}, "router": {router}}
						if len(fsNames) > 0 {
							q.Set("failed", strings.Join(fsNames, ","))
						}
						var got QueryResponse
						if code := get(t, srv, "/v1/query?"+q.Encode(), &got); code != 200 {
							t.Fatalf("reach query %v: status %d", q, code)
						}
						if got.Reachable == nil || *got.Reachable != want {
							t.Fatalf("reach(%s@%s, failed=%v): query=%v sim=%v",
								p, router, fsNames, got.Reachable, want)
						}
					}

					// Min failures per router, /v1/route's convention.
					want := 0
					if sim.F.Eval(cond, nil) {
						want = sim.F.MinFailuresToViolate(cond)
						if want > k {
							want = -1
						}
					}
					for _, target := range targets {
						var got QueryResponse
						path := "/v1/query?kind=minfail&prefix=" + url.QueryEscape(target) + "&router=" + router
						if code := get(t, srv, path, &got); code != 200 {
							t.Fatalf("minfail query: status %d", code)
						}
						if got.MinFailures == nil || *got.MinFailures != want {
							t.Fatalf("minfail(%s@%s): query=%v sim=%d", target, router, got.MinFailures, want)
						}
					}
				}

				// Class-aggregate min failures: the weakest reachable speaker.
				wantAgg := logic.Unfailable
				for _, router := range speakers {
					node, _ := w.Net.NodeByName(router)
					cond := res.ReachCond(node.ID, pt)
					if !sim.F.Eval(cond, nil) {
						continue
					}
					if mf := sim.F.MinFailuresToViolate(cond); mf < wantAgg {
						wantAgg = mf
					}
				}
				if wantAgg > k {
					wantAgg = -1
				}
				var got QueryResponse
				if code := get(t, srv, "/v1/query?kind=minfail&prefix="+url.QueryEscape(p.String()), &got); code != 200 {
					t.Fatalf("aggregate minfail: status %d", code)
				}
				if got.MinFailures == nil || *got.MinFailures != wantAgg {
					t.Fatalf("minfail(%s): query=%v sim=%d", p, got.MinFailures, wantAgg)
				}
			}

			// Impact soundness: pick a handful of links; any prefix whose
			// fresh condition at some speaker semantically depends on the
			// link must be in the reported affected set.
			for i := 0; i < 5; i++ {
				l := links[rng.Intn(len(links))]
				name := w.Net.Node(l.A).Name + "~" + w.Net.Node(l.B).Name
				var got QueryResponse
				if code := get(t, srv, "/v1/query?kind=impact&link="+url.QueryEscape(name), &got); code != 200 {
					t.Fatalf("impact query %s: status %d", name, code)
				}
				affected := map[string]bool{}
				for _, p := range got.Prefixes {
					affected[p] = true
				}
				dead := map[logic.Var]logic.F{logic.Var(l.ID): logic.False}
				for _, cls := range m.Classes() {
					res, err := sim.Run(cls.Rep)
					if err != nil {
						t.Fatal(err)
					}
					pt := core.AnyRouteTo(cls.Rep)
					depends := false
					for _, router := range speakers {
						node, _ := w.Net.NodeByName(router)
						cond := res.ReachCond(node.ID, pt)
						if !sim.F.Equivalent(cond, sim.F.Substitute(cond, dead)) {
							depends = true
							break
						}
					}
					if depends {
						for _, member := range cls.Members {
							if !affected[member.String()] {
								t.Fatalf("impact(%s) misses %s though its condition depends on the link", name, member)
							}
						}
					}
				}
				// The affected list is sorted and within the universe.
				if !sort.StringsAreSorted(got.Prefixes) {
					t.Fatalf("impact(%s) prefixes not sorted", name)
				}
			}
		})
	}
}
