package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hoyan/internal/behavior"
	"hoyan/internal/config"
	"hoyan/internal/topo"
)

func service(t *testing.T) *Service {
	t.Helper()
	net := topo.NewNetwork()
	a := net.MustAddNode(topo.Node{Name: "A", AS: 100, Vendor: behavior.VendorAlpha})
	b := net.MustAddNode(topo.Node{Name: "B", AS: 200, Vendor: behavior.VendorAlpha})
	c := net.MustAddNode(topo.Node{Name: "C", AS: 300, Vendor: behavior.VendorAlpha})
	d := net.MustAddNode(topo.Node{Name: "D", AS: 400, Vendor: behavior.VendorAlpha})
	net.MustAddLink(a, c, 10)
	net.MustAddLink(a, b, 10)
	net.MustAddLink(b, c, 10)
	net.MustAddLink(c, d, 10)
	snap := config.Snapshot{}
	for name, text := range map[string]string{
		"A": "hostname A\nrouter bgp 100\n network 10.0.0.0/8\n neighbor B remote-as 200\n neighbor C remote-as 300\n",
		"B": "hostname B\nrouter bgp 200\n neighbor A remote-as 100\n neighbor C remote-as 300\n",
		"C": "hostname C\nrouter bgp 300\n neighbor A remote-as 100\n neighbor B remote-as 200\n neighbor D remote-as 400\n",
		"D": "hostname D\nrouter bgp 400\n neighbor C remote-as 300\n",
	} {
		dd, err := config.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		snap[name] = dd
	}
	s, err := New(net, snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, srv *httptest.Server, path string, into any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestRouteEndpoint(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()
	var out RouteResponse
	if code := get(t, srv, "/v1/route?prefix=10.0.0.0/8&router=D", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !out.Reachable || out.MinFailures != 1 || len(out.Witness) != 1 || out.Witness[0] != "C~D" {
		t.Fatalf("response %+v", out)
	}
	// Cached second query.
	if code := get(t, srv, "/v1/route?prefix=10.0.0.0/8&router=C", &out); code != 200 || out.MinFailures != 2 {
		t.Fatalf("C response %+v (%d)", out, code)
	}
}

func TestPacketEndpoint(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()
	var out PacketResponse
	if code := get(t, srv, "/v1/packet?prefix=10.0.0.0/8&src=D", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !out.Reachable || out.Gateway != "A" || out.MinFailures != 1 {
		t.Fatalf("response %+v", out)
	}
}

func TestEquivalenceAndRacingEndpoints(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()
	var eq EquivalenceResponse
	if code := get(t, srv, "/v1/equivalence?a=B&b=D", &eq); code != 200 {
		t.Fatalf("status %d", code)
	}
	// B and D see different AS paths — not equivalent.
	if eq.Equivalent {
		t.Fatalf("B and D must differ: %+v", eq)
	}
	var rc RacingResponse
	if code := get(t, srv, "/v1/racing?prefix=10.0.0.0/8", &rc); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rc.Ambiguous || rc.Convergences != 1 {
		t.Fatalf("racing %+v", rc)
	}
}

func TestListingEndpoints(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()
	var routers struct {
		Routers []string `json:"routers"`
	}
	get(t, srv, "/v1/routers", &routers)
	if len(routers.Routers) != 4 {
		t.Fatalf("routers %v", routers)
	}
	var prefixes struct {
		Prefixes []string `json:"prefixes"`
	}
	get(t, srv, "/v1/prefixes", &prefixes)
	if len(prefixes.Prefixes) != 1 || prefixes.Prefixes[0] != "10.0.0.0/8" {
		t.Fatalf("prefixes %v", prefixes)
	}
	var classes struct {
		Classes []ClassResponse `json:"classes"`
	}
	if code := get(t, srv, "/v1/classes", &classes); code != 200 {
		t.Fatalf("classes status %d", code)
	}
	if len(classes.Classes) != 1 {
		t.Fatalf("classes %v", classes)
	}
	c := classes.Classes[0]
	if c.Representative != "10.0.0.0/8" || len(c.Members) != 1 || c.Members[0] != "10.0.0.0/8" {
		t.Fatalf("class %+v", c)
	}
}

func TestBadRequests(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()
	for _, path := range []string{
		"/v1/route?prefix=zzz&router=D",
		"/v1/route?prefix=10.0.0.0/8&router=nope",
		"/v1/packet?prefix=zzz&src=D",
		"/v1/packet?prefix=10.0.0.0/8&src=nope",
		"/v1/packet?prefix=99.0.0.0/8&src=D", // nobody announces
		"/v1/equivalence?a=nope&b=D",
		"/v1/racing?prefix=zzz",
	} {
		var e errorBody
		if code := get(t, srv, path, &e); code != 400 {
			t.Errorf("%s: status %d, want 400", path, code)
		}
		if e.Error == "" {
			t.Errorf("%s: missing error body", path)
		}
	}
}

func post(t *testing.T, srv *httptest.Server, path, body string, into any) int {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestResweepEndpoint(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()

	// First resweep: cold, seeds the baseline.
	var seed ResweepResponse
	if code := post(t, srv, "/v1/resweep", "", &seed); code != 200 {
		t.Fatalf("seed status %d", code)
	}
	if seed.Incremental || seed.Replayed != 0 || seed.Classes != 1 || seed.Prefixes != 1 {
		t.Fatalf("seed response %+v", seed)
	}

	// No-change resweep: everything replays.
	var again ResweepResponse
	if code := post(t, srv, "/v1/resweep", "{}", &again); code != 200 {
		t.Fatalf("resweep status %d", code)
	}
	if !again.Incremental || again.Replayed != again.Classes || len(again.Delta) != 0 {
		t.Fatalf("no-change resweep %+v", again)
	}
	if again.Invalidation == nil || again.Invalidation.ClassesDirty != 0 {
		t.Fatalf("no-change invalidation %+v", again.Invalidation)
	}

	// A config update: A originates a second prefix. The delta is
	// reported, the update is committed (the new prefix is queryable),
	// and /v1/classes carries the invalidation counters.
	body := `{"updates": [{"device": "A", "lines": ["router bgp 100", " network 11.0.0.0/8"]}]}`
	var upd ResweepResponse
	if code := post(t, srv, "/v1/resweep", body, &upd); code != 200 {
		t.Fatalf("update status %d", code)
	}
	if !upd.Incremental || upd.Prefixes != 2 || len(upd.Delta) == 0 {
		t.Fatalf("update resweep %+v", upd)
	}
	if upd.Invalidation == nil || upd.Invalidation.ClassesDirty == 0 {
		t.Fatalf("update invalidation %+v", upd.Invalidation)
	}
	var route RouteResponse
	if code := get(t, srv, "/v1/route?prefix=11.0.0.0/8&router=D", &route); code != 200 || !route.Reachable {
		t.Fatalf("post-commit route %+v (%d)", route, code)
	}
	var classes struct {
		Classes      []ClassResponse   `json:"classes"`
		Invalidation *InvalidationBody `json:"last_invalidation"`
	}
	if code := get(t, srv, "/v1/classes", &classes); code != 200 {
		t.Fatalf("classes status %d", code)
	}
	if classes.Invalidation == nil || classes.Invalidation.ClassesDirty != upd.Invalidation.ClassesDirty {
		t.Fatalf("classes counters %+v, want %+v", classes.Invalidation, upd.Invalidation)
	}

	// Bad update bodies do not commit anything.
	if code := post(t, srv, "/v1/resweep", `{"updates": [{"device": "nope", "lines": ["hostname x"]}]}`, nil); code != 400 {
		t.Fatalf("bad device status %d", code)
	}
}

func TestConcurrentQueries(t *testing.T) {
	srv := httptest.NewServer(service(t).Handler())
	defer srv.Close()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/v1/route?prefix=10.0.0.0/8&router=D")
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
