package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func postRaw(t *testing.T, srv *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSessionsEndpointAndLimits(t *testing.T) {
	svc := service(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var out SessionsResponse
	if code := get(t, srv, "/v1/sessions", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.MaxSessions != DefaultMaxSessions || out.Draining || len(out.Sessions) != 0 {
		t.Fatalf("idle registry: %+v", out)
	}

	svc.SetSessionLimits(5, 100)
	if code := get(t, srv, "/v1/sessions", &out); code != 200 || out.MaxSessions != 5 || out.MaxJobs != 100 {
		t.Fatalf("limits not applied: %+v", out)
	}

	// A sweep runs as a session and shows up in the resweep response.
	resp := postRaw(t, srv, "/v1/resweep", "")
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("resweep status %d", resp.StatusCode)
	}
}

func TestAdmissionSaturationAnswers429(t *testing.T) {
	svc := service(t)
	svc.SetSessionLimits(1, 0)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Hold the single session slot open directly (an HTTP sweep on this
	// tiny model is too fast to race against reliably).
	si, err := svc.adm.admit(1)
	if err != nil {
		t.Fatal(err)
	}
	resp := postRaw(t, srv, "/v1/resweep", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated service answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	svc.adm.release(si.ID)

	// Slot free again: admitted.
	resp2 := postRaw(t, srv, "/v1/resweep", "")
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("freed slot still refused: %d", resp2.StatusCode)
	}
}

func TestAdmissionJobBound(t *testing.T) {
	svc := service(t)
	// The test model has at least one class; a bound of 0 jobs is
	// impossible to express (0 = unlimited), so bound to fewer classes
	// than the model has by using the class count minus nothing — admit
	// directly to pin the arithmetic.
	svc.SetSessionLimits(2, 3)
	if _, err := svc.adm.admit(4); err == nil {
		t.Fatal("4 jobs over a bound of 3 must be refused")
	}
	si, err := svc.adm.admit(3)
	if err != nil {
		t.Fatalf("3 jobs at the bound must be admitted: %v", err)
	}
	svc.adm.release(si.ID)
}

func TestDrainRefusesNewSweepsAndWaits(t *testing.T) {
	svc := service(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// A session is running as the drain starts.
	si, err := svc.adm.admit(1)
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()

	// Draining: new sweeps answer 503.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := postRaw(t, srv, "/v1/resweep", "")
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining service still admits sweeps (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The drain completes once the running session finishes.
	svc.adm.release(si.ID)
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("drain with no remaining sessions: %v", err)
	}

	var out SessionsResponse
	if code := get(t, srv, "/v1/sessions", &out); code != 200 || !out.Draining {
		t.Fatalf("registry must stay draining after Drain: %+v (%d)", out, code)
	}
}

func TestDrainTimesOutLoudly(t *testing.T) {
	svc := service(t)
	if _, err := svc.adm.admit(1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err == nil {
		t.Fatal("drain with a stuck session must return the context error")
	}
}
