// Package httpapi exposes the verifier as an HTTP/JSON service — the
// frontend of Figure 2 that operators call to check updates and run
// audits. Handlers are stateless wrappers over a verification session;
// the underlying simulator is serialized with a mutex (per-prefix results
// are cached, so repeated queries are cheap).
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"hoyan/internal/behavior"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/dataplane"
	"hoyan/internal/netaddr"
	"hoyan/internal/racing"
	"hoyan/internal/topo"
)

// Service serves verification queries for one network snapshot.
type Service struct {
	mu    sync.Mutex
	net   *topo.Network
	snap  config.Snapshot
	model *core.Model
	sim   *core.Simulator
	k     int
	cache map[netaddr.Prefix]*core.Result
}

// New builds a service with failure budget k (0 = 3).
func New(net *topo.Network, snap config.Snapshot, k int) (*Service, error) {
	if k == 0 {
		k = 3
	}
	m, err := core.Assemble(net, snap, behavior.TrueProfiles())
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.K = k
	return &Service{
		net: net, snap: snap, model: m,
		sim:   core.NewSimulator(m, opts),
		k:     k,
		cache: map[netaddr.Prefix]*core.Result{},
	}, nil
}

// Handler returns the HTTP mux:
//
//	GET /v1/routers
//	GET /v1/prefixes
//	GET /v1/route?prefix=P&router=R      route reachability under failures
//	GET /v1/packet?prefix=P&src=R        packet reachability to the gateway
//	GET /v1/equivalence?a=R1&b=R2        role equivalence
//	GET /v1/racing?prefix=P              update-racing ambiguity
//	GET /v1/classes                      prefix behavior-class partition
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/routers", s.handleRouters)
	mux.HandleFunc("GET /v1/prefixes", s.handlePrefixes)
	mux.HandleFunc("GET /v1/route", s.handleRoute)
	mux.HandleFunc("GET /v1/packet", s.handlePacket)
	mux.HandleFunc("GET /v1/equivalence", s.handleEquivalence)
	mux.HandleFunc("GET /v1/racing", s.handleRacing)
	mux.HandleFunc("GET /v1/classes", s.handleClasses)
	return mux
}

// Classes returns the model's prefix behavior-class partition (what a
// classed sweep dispatches), for startup stats and the /v1/classes view.
func (s *Service) Classes() []core.PrefixClass { return s.model.Classes() }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Service) result(p netaddr.Prefix) (*core.Result, error) {
	if r, ok := s.cache[p]; ok {
		return r, nil
	}
	r, err := s.sim.Run(p)
	if err != nil {
		return nil, err
	}
	s.cache[p] = r
	return r, nil
}

func (s *Service) handleRouters(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, n := range s.net.Nodes() {
		names = append(names, n.Name)
	}
	writeJSON(w, http.StatusOK, map[string]any{"routers": names})
}

func (s *Service) handlePrefixes(w http.ResponseWriter, r *http.Request) {
	var ps []string
	for _, p := range s.model.AnnouncedPrefixes() {
		ps = append(ps, p.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{"prefixes": ps})
}

// RouteResponse is the JSON body of /v1/route.
type RouteResponse struct {
	Prefix      string   `json:"prefix"`
	Router      string   `json:"router"`
	Reachable   bool     `json:"reachable"`
	MinFailures int      `json:"min_failures"` // -1: survives the budget
	Tolerant    bool     `json:"tolerant"`
	Witness     []string `json:"witness,omitempty"`
	FormulaLen  int      `json:"formula_len"`
}

func (s *Service) handleRoute(w http.ResponseWriter, r *http.Request) {
	prefix, router := r.URL.Query().Get("prefix"), r.URL.Query().Get("router")
	p, err := netaddr.Parse(prefix)
	if err != nil {
		badRequest(w, "bad prefix: %v", err)
		return
	}
	node, ok := s.net.NodeByName(router)
	if !ok {
		badRequest(w, "unknown router %q", router)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.result(p)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	pt := core.AnyRouteTo(p)
	resp := RouteResponse{Prefix: prefix, Router: router, Reachable: res.Reachable(node.ID, pt)}
	min, flen := res.MinFailuresToLose(node.ID, pt)
	resp.FormulaLen = flen
	switch {
	case !resp.Reachable:
		resp.MinFailures = 0
	case min > s.k:
		resp.MinFailures = -1
		resp.Tolerant = true
	default:
		resp.MinFailures = min
		if fs, ok := res.WitnessFailure(node.ID, pt); ok {
			for _, l := range fs {
				resp.Witness = append(resp.Witness, s.net.Link(l).Name)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// PacketResponse is the JSON body of /v1/packet.
type PacketResponse struct {
	Prefix      string `json:"prefix"`
	Src         string `json:"src"`
	Gateway     string `json:"gateway"`
	Reachable   bool   `json:"reachable"`
	MinFailures int    `json:"min_failures"`
}

func (s *Service) handlePacket(w http.ResponseWriter, r *http.Request) {
	prefix, src := r.URL.Query().Get("prefix"), r.URL.Query().Get("src")
	p, err := netaddr.Parse(prefix)
	if err != nil {
		badRequest(w, "bad prefix: %v", err)
		return
	}
	node, ok := s.net.NodeByName(src)
	if !ok {
		badRequest(w, "unknown router %q", src)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	anns := s.model.AnnouncersOf(p)
	if len(anns) == 0 {
		badRequest(w, "nobody announces %s", p)
		return
	}
	res, err := s.result(p)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	fib := dataplane.Build(res)
	pr := fib.PacketReach(node.ID, 0, p.Addr+1, anns[0])
	f := s.sim.F
	resp := PacketResponse{
		Prefix: prefix, Src: src,
		Gateway:   s.net.Node(anns[0]).Name,
		Reachable: f.Eval(pr.Cond, nil),
	}
	min := f.MinFailuresToViolate(pr.Cond)
	if min > s.k {
		resp.MinFailures = -1
	} else {
		resp.MinFailures = min
	}
	writeJSON(w, http.StatusOK, resp)
}

// EquivalenceResponse is the JSON body of /v1/equivalence.
type EquivalenceResponse struct {
	A           string   `json:"a"`
	B           string   `json:"b"`
	Equivalent  bool     `json:"equivalent"`
	Differences []string `json:"differences,omitempty"`
}

func (s *Service) handleEquivalence(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	na, ok1 := s.net.NodeByName(a)
	nb, ok2 := s.net.NodeByName(b)
	if !ok1 || !ok2 {
		badRequest(w, "unknown router")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := EquivalenceResponse{A: a, B: b, Equivalent: true}
	for _, p := range s.model.AnnouncedPrefixes() {
		res, err := s.result(p)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		for _, d := range res.EquivalentRoles(na.ID, nb.ID) {
			resp.Equivalent = false
			resp.Differences = append(resp.Differences,
				fmt.Sprintf("%s: %s (%s vs %s)", d.Prefix, d.Field, d.A, d.B))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ClassResponse is one behavior class in the JSON body of /v1/classes.
type ClassResponse struct {
	Representative string   `json:"representative"`
	Members        []string `json:"members"`
}

func (s *Service) handleClasses(w http.ResponseWriter, r *http.Request) {
	var out []ClassResponse
	for _, c := range s.model.Classes() {
		cr := ClassResponse{Representative: c.Rep.String()}
		for _, p := range c.Members {
			cr.Members = append(cr.Members, p.String())
		}
		out = append(out, cr)
	}
	writeJSON(w, http.StatusOK, map[string]any{"classes": out})
}

// RacingResponse is the JSON body of /v1/racing.
type RacingResponse struct {
	Prefix           string   `json:"prefix"`
	Ambiguous        bool     `json:"ambiguous"`
	Convergences     int      `json:"convergences"`
	AmbiguousRouters []string `json:"ambiguous_routers,omitempty"`
}

func (s *Service) handleRacing(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	p, err := netaddr.Parse(prefix)
	if err != nil {
		badRequest(w, "bad prefix: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := racing.Detect(s.sim, p, racing.DefaultOptions())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	resp := RacingResponse{Prefix: prefix, Ambiguous: rep.Ambiguous, Convergences: len(rep.Solutions)}
	for _, n := range rep.AmbiguousNodes {
		resp.AmbiguousRouters = append(resp.AmbiguousRouters, s.net.Node(n).Name)
	}
	writeJSON(w, http.StatusOK, resp)
}
