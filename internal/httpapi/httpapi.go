// Package httpapi exposes the verifier as an HTTP/JSON service — the
// frontend of Figure 2 that operators call to check updates and run
// audits. Handlers are stateless wrappers over a verification session;
// the underlying simulator is serialized with a mutex (per-prefix results
// are cached, so repeated queries are cheap).
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"hoyan"
	"hoyan/internal/behavior"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/dataplane"
	"hoyan/internal/netaddr"
	"hoyan/internal/racing"
	"hoyan/internal/topo"
	"hoyan/internal/vet"
)

// Service serves verification queries for one network snapshot.
type Service struct {
	mu    sync.Mutex
	net   *topo.Network
	snap  config.Snapshot
	model *core.Model
	sim   *core.Simulator
	k     int
	cache map[netaddr.Prefix]*core.Result
	// baseline is the result store the last /v1/resweep captured; the
	// next resweep diffs against it and replays what the delta spares.
	baseline *hoyan.ResultStore
	// lastInval summarizes the last resweep's invalidation decisions for
	// the /v1/classes counters.
	lastInval *core.InvalidationStats
	// adm is the sweep-session registry: admission control, per-session
	// job bounds, and the SIGTERM drain latch (see admission.go).
	adm admission
	// query is the compiled-snapshot registry serving /v1/query and
	// /v1/snapshots without simulation or locks (see query.go).
	query *queryPlane
}

// New builds a service with failure budget k (0 = 3).
func New(net *topo.Network, snap config.Snapshot, k int) (*Service, error) {
	if k == 0 {
		k = 3
	}
	m, err := core.Assemble(net, snap, behavior.TrueProfiles())
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.K = k
	return &Service{
		net: net, snap: snap, model: m,
		sim:   core.NewSimulator(m, opts),
		k:     k,
		cache: map[netaddr.Prefix]*core.Result{},
		query: newQueryPlane(),
	}, nil
}

// Handler returns the HTTP mux:
//
//	GET /v1/routers
//	GET /v1/prefixes
//	GET /v1/route?prefix=P&router=R      route reachability under failures
//	GET /v1/packet?prefix=P&src=R        packet reachability to the gateway
//	GET /v1/equivalence?a=R1&b=R2        role equivalence
//	GET /v1/racing?prefix=P              update-racing ambiguity
//	GET /v1/classes                      prefix behavior-class partition
//	POST /v1/resweep                     whole-network sweep, incremental
//	                                     against the previous resweep's
//	                                     baseline (optional config updates
//	                                     in the body); auto-publishes the
//	                                     committed store to the query plane
//	GET  /v1/vet                         static configuration analysis of
//	                                     the held model (defect findings
//	                                     and predicted modular refusals);
//	                                     ?only=a,b selects analyzers
//	GET  /v1/query                       compiled-snapshot answers (reach,
//	                                     minfail, impact) — never simulates
//	GET  /v1/snapshots                   compiled-snapshot registry
//	POST /v1/snapshots                   publish a store (disk path or the
//	                                     held baseline)
//	POST /v1/snapshots/activate          atomic switch by snapshot id
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/routers", s.handleRouters)
	mux.HandleFunc("GET /v1/prefixes", s.handlePrefixes)
	mux.HandleFunc("GET /v1/route", s.handleRoute)
	mux.HandleFunc("GET /v1/packet", s.handlePacket)
	mux.HandleFunc("GET /v1/equivalence", s.handleEquivalence)
	mux.HandleFunc("GET /v1/racing", s.handleRacing)
	mux.HandleFunc("GET /v1/classes", s.handleClasses)
	mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	mux.HandleFunc("POST /v1/resweep", s.handleResweep)
	mux.HandleFunc("GET /v1/vet", s.handleVet)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/snapshots", s.handleSnapshotList)
	mux.HandleFunc("POST /v1/snapshots", s.handleSnapshotPublish)
	mux.HandleFunc("POST /v1/snapshots/activate", s.handleSnapshotActivate)
	return mux
}

// Classes returns the model's prefix behavior-class partition (what a
// classed sweep dispatches), for startup stats and the /v1/classes view.
func (s *Service) Classes() []core.PrefixClass { return s.model.Classes() }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Service) result(p netaddr.Prefix) (*core.Result, error) {
	if r, ok := s.cache[p]; ok {
		return r, nil
	}
	r, err := s.sim.Run(p)
	if err != nil {
		return nil, err
	}
	s.cache[p] = r
	return r, nil
}

func (s *Service) handleRouters(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, n := range s.net.Nodes() {
		names = append(names, n.Name)
	}
	writeJSON(w, http.StatusOK, map[string]any{"routers": names})
}

func (s *Service) handlePrefixes(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ps []string
	for _, p := range s.model.AnnouncedPrefixes() {
		ps = append(ps, p.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{"prefixes": ps})
}

// RouteResponse is the JSON body of /v1/route.
type RouteResponse struct {
	Prefix      string   `json:"prefix"`
	Router      string   `json:"router"`
	Reachable   bool     `json:"reachable"`
	MinFailures int      `json:"min_failures"` // -1: survives the budget
	Tolerant    bool     `json:"tolerant"`
	Witness     []string `json:"witness,omitempty"`
	FormulaLen  int      `json:"formula_len"`
}

func (s *Service) handleRoute(w http.ResponseWriter, r *http.Request) {
	prefix, router := r.URL.Query().Get("prefix"), r.URL.Query().Get("router")
	p, err := netaddr.Parse(prefix)
	if err != nil {
		badRequest(w, "bad prefix: %v", err)
		return
	}
	node, ok := s.net.NodeByName(router)
	if !ok {
		badRequest(w, "unknown router %q", router)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.result(p)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	pt := core.AnyRouteTo(p)
	resp := RouteResponse{Prefix: prefix, Router: router, Reachable: res.Reachable(node.ID, pt)}
	min, flen := res.MinFailuresToLose(node.ID, pt)
	resp.FormulaLen = flen
	switch {
	case !resp.Reachable:
		resp.MinFailures = 0
	case min > s.k:
		resp.MinFailures = -1
		resp.Tolerant = true
	default:
		resp.MinFailures = min
		if fs, ok := res.WitnessFailure(node.ID, pt); ok {
			for _, l := range fs {
				resp.Witness = append(resp.Witness, s.net.Link(l).Name)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// PacketResponse is the JSON body of /v1/packet.
type PacketResponse struct {
	Prefix      string `json:"prefix"`
	Src         string `json:"src"`
	Gateway     string `json:"gateway"`
	Reachable   bool   `json:"reachable"`
	MinFailures int    `json:"min_failures"`
}

func (s *Service) handlePacket(w http.ResponseWriter, r *http.Request) {
	prefix, src := r.URL.Query().Get("prefix"), r.URL.Query().Get("src")
	p, err := netaddr.Parse(prefix)
	if err != nil {
		badRequest(w, "bad prefix: %v", err)
		return
	}
	node, ok := s.net.NodeByName(src)
	if !ok {
		badRequest(w, "unknown router %q", src)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	anns := s.model.AnnouncersOf(p)
	if len(anns) == 0 {
		badRequest(w, "nobody announces %s", p)
		return
	}
	res, err := s.result(p)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	fib := dataplane.Build(res)
	pr := fib.PacketReach(node.ID, 0, p.Addr+1, anns[0])
	f := s.sim.F
	resp := PacketResponse{
		Prefix: prefix, Src: src,
		Gateway:   s.net.Node(anns[0]).Name,
		Reachable: f.Eval(pr.Cond, nil),
	}
	min := f.MinFailuresToViolate(pr.Cond)
	if min > s.k {
		resp.MinFailures = -1
	} else {
		resp.MinFailures = min
	}
	writeJSON(w, http.StatusOK, resp)
}

// EquivalenceResponse is the JSON body of /v1/equivalence.
type EquivalenceResponse struct {
	A           string   `json:"a"`
	B           string   `json:"b"`
	Equivalent  bool     `json:"equivalent"`
	Differences []string `json:"differences,omitempty"`
}

func (s *Service) handleEquivalence(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	na, ok1 := s.net.NodeByName(a)
	nb, ok2 := s.net.NodeByName(b)
	if !ok1 || !ok2 {
		badRequest(w, "unknown router")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := EquivalenceResponse{A: a, B: b, Equivalent: true}
	for _, p := range s.model.AnnouncedPrefixes() {
		res, err := s.result(p)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		for _, d := range res.EquivalentRoles(na.ID, nb.ID) {
			resp.Equivalent = false
			resp.Differences = append(resp.Differences,
				fmt.Sprintf("%s: %s (%s vs %s)", d.Prefix, d.Field, d.A, d.B))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ClassResponse is one behavior class in the JSON body of /v1/classes.
type ClassResponse struct {
	Representative string   `json:"representative"`
	Members        []string `json:"members"`
}

func (s *Service) handleClasses(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ClassResponse
	for _, c := range s.model.Classes() {
		cr := ClassResponse{Representative: c.Rep.String()}
		for _, p := range c.Members {
			cr.Members = append(cr.Members, p.String())
		}
		out = append(out, cr)
	}
	body := map[string]any{"classes": out}
	if s.lastInval != nil {
		body["last_invalidation"] = invalidationBody(s.lastInval)
	}
	writeJSON(w, http.StatusOK, body)
}

// ResweepUpdate is one device's incremental config change in a
// /v1/resweep request ("no "-prefixed lines remove commands).
type ResweepUpdate struct {
	Device string   `json:"device"`
	Lines  []string `json:"lines"`
}

// ResweepRequest is the JSON body of POST /v1/resweep. An empty body
// sweeps the current snapshot as-is.
type ResweepRequest struct {
	Updates []ResweepUpdate `json:"updates"`
	// NoIncremental ignores the held baseline and sweeps cold.
	NoIncremental bool `json:"no_incremental"`
	// AuditSample re-simulates this fraction of replayed classes and
	// replicated members, failing the sweep on divergence (0 = none).
	AuditSample float64 `json:"audit_sample"`
	// Workers is the sweep goroutine count (0 = GOMAXPROCS).
	Workers int `json:"workers"`
}

// InvalidationBody mirrors core.InvalidationStats in JSON form.
type InvalidationBody struct {
	ClassesDirty     int            `json:"classes_dirty"`
	ClassesReplayed  int            `json:"classes_replayed"`
	ReplaysAudited   int            `json:"replays_audited"`
	FullInvalidation bool           `json:"full_invalidation"`
	DeltaKinds       map[string]int `json:"delta_kinds,omitempty"`
	Notes            []string       `json:"notes,omitempty"`
}

func invalidationBody(st *core.InvalidationStats) *InvalidationBody {
	return &InvalidationBody{
		ClassesDirty:     st.ClassesDirty,
		ClassesReplayed:  st.ClassesReplayed,
		ReplaysAudited:   st.ReplaysAudited,
		FullInvalidation: st.FullInvalidation,
		DeltaKinds:       st.DeltaKinds,
		Notes:            st.Notes,
	}
}

// ViolationBody is one reachability violation in a resweep response.
type ViolationBody struct {
	Kind    string `json:"kind"`
	Prefix  string `json:"prefix"`
	Router  string `json:"router"`
	Details string `json:"details"`
}

// ResweepResponse is the JSON body of POST /v1/resweep.
type ResweepResponse struct {
	// Session is the admitted sweep-session id (see GET /v1/sessions).
	Session string `json:"session"`
	// Incremental reports whether a baseline from a previous resweep was
	// diffed against (the first resweep is always a cold, seeding sweep).
	Incremental bool `json:"incremental"`
	Prefixes    int  `json:"prefixes"`
	Classes     int  `json:"classes"`
	// Replayed counts classes served from the baseline without
	// re-simulation.
	Replayed   int             `json:"classes_replayed"`
	DurationMS int64           `json:"duration_ms"`
	Violations []ViolationBody `json:"violations,omitempty"`
	// Delta lists the model changes the sweep acted on, one line each.
	Delta        []string          `json:"delta,omitempty"`
	Invalidation *InvalidationBody `json:"invalidation,omitempty"`
	// Snapshot is the query-plane snapshot id this sweep's store was
	// published under; SnapshotError carries the compile failure when
	// publication was impossible (e.g. a replayed class predating the
	// query plane), which degrades /v1/query, not the sweep itself.
	Snapshot      string `json:"snapshot,omitempty"`
	SnapshotError string `json:"snapshot_error,omitempty"`
}

// handleResweep applies the request's config updates (if any), sweeps
// the whole network incrementally against the baseline captured by the
// previous resweep, commits the updated snapshot, and holds the new
// baseline for the next call. Every resweep runs as an admitted session:
// saturation is a 429 + Retry-After, a draining service a 503, and the
// sweep itself runs without s.mu so admitted sessions truly overlap
// (queries stay served throughout; commit is last-writer-wins).
func (s *Service) handleResweep(w http.ResponseWriter, r *http.Request) {
	var req ResweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		badRequest(w, "bad body: %v", err)
		return
	}

	// Capture the served state under a brief lock; the class count is the
	// session's queued-job size for admission.
	s.mu.Lock()
	snap := s.snap
	baseline := s.baseline
	jobs := len(s.model.Classes())
	s.mu.Unlock()

	si, err := s.adm.admit(jobs)
	if err != nil {
		ae := err.(*errAdmission)
		if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
		}
		writeJSON(w, ae.status, errorBody{Error: ae.msg})
		return
	}
	defer s.adm.release(si.ID)

	if len(req.Updates) > 0 {
		ups := make([]config.Update, 0, len(req.Updates))
		for _, u := range req.Updates {
			ups = append(ups, config.Update{Device: u.Device, Lines: u.Lines})
		}
		next, err := snap.Apply(ups)
		if err != nil {
			badRequest(w, "apply updates: %v", err)
			return
		}
		snap = next
	}

	opts := hoyan.Options{
		K:             s.k,
		Baseline:      baseline,
		NoIncremental: req.NoIncremental,
		AuditSample:   req.AuditSample,
	}
	rep, store, err := hoyan.NetworkFrom(s.net, snap).SweepBaseline(opts, req.Workers)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}

	// Commit: the swept snapshot becomes the served one (queries now see
	// the updated configs) and the fresh store the next baseline.
	s.mu.Lock()
	if len(req.Updates) > 0 {
		m, err := core.Assemble(s.net, snap, behavior.TrueProfiles())
		if err != nil {
			s.mu.Unlock()
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		copts := core.DefaultOptions()
		copts.K = s.k
		s.snap = snap
		s.model = m
		s.sim = core.NewSimulator(m, copts)
		s.cache = map[netaddr.Prefix]*core.Result{}
	}
	incremental := baseline != nil && !req.NoIncremental
	s.baseline = store
	s.lastInval = rep.Invalidation
	s.mu.Unlock()

	// Auto-publish the committed store so /v1/query serves the state this
	// sweep just verified. Best-effort: a store that cannot compile only
	// degrades the query plane (the previous snapshot keeps serving).
	var snapID, snapErr string
	if e, err := s.query.publish(store, true); err != nil {
		snapErr = err.Error()
	} else {
		snapID = e.id
	}

	resp := ResweepResponse{
		Session:     si.ID,
		Incremental: incremental,
		Prefixes:    len(rep.Prefixes),
		Classes:     rep.Classes,
		Replayed:    rep.Replayed,
		DurationMS:  rep.Duration.Milliseconds(),
		Snapshot:    snapID,
	}
	resp.SnapshotError = snapErr
	for _, v := range rep.Violations {
		resp.Violations = append(resp.Violations, ViolationBody{
			Kind: v.Kind, Prefix: v.Prefix, Router: v.Router, Details: v.Details,
		})
	}
	if rep.Delta != nil {
		for _, it := range rep.Delta.Items {
			resp.Delta = append(resp.Delta, it.String())
		}
	}
	if rep.Invalidation != nil {
		resp.Invalidation = invalidationBody(rep.Invalidation)
	}
	writeJSON(w, http.StatusOK, resp)
}

// VetResponse is the JSON body of /v1/vet — the same schema family as
// `hoyan vet -json`.
type VetResponse struct {
	Findings    int              `json:"findings"`
	Advisories  int              `json:"advisories"`
	Diagnostics []vet.Diagnostic `json:"diagnostics"`
}

// handleVet runs the static analyzers against the model the service
// currently holds — after a committed resweep, that is the swept
// snapshot — so operators can ask "what would vet say about what you
// are serving" without shipping the config dir anywhere. Vet runs take
// milliseconds, so the brief model capture under s.mu is the only
// synchronization needed; the analysis itself runs unlocked.
func (s *Service) handleVet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := s.model
	k := s.k
	s.mu.Unlock()
	analyzers := vet.Analyzers()
	if only := r.URL.Query().Get("only"); only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(only, ",") {
			a := vet.ByName(strings.TrimSpace(name))
			if a == nil {
				badRequest(w, "unknown analyzer %q", strings.TrimSpace(name))
				return
			}
			analyzers = append(analyzers, a)
		}
	}
	diags, err := vet.RunBudget(m, analyzers, k)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if diags == nil {
		diags = []vet.Diagnostic{}
	}
	findings := vet.Findings(diags)
	writeJSON(w, http.StatusOK, VetResponse{
		Findings: findings, Advisories: len(diags) - findings, Diagnostics: diags,
	})
}

// RacingResponse is the JSON body of /v1/racing.
type RacingResponse struct {
	Prefix           string   `json:"prefix"`
	Ambiguous        bool     `json:"ambiguous"`
	Convergences     int      `json:"convergences"`
	AmbiguousRouters []string `json:"ambiguous_routers,omitempty"`
}

func (s *Service) handleRacing(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	p, err := netaddr.Parse(prefix)
	if err != nil {
		badRequest(w, "bad prefix: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := racing.Detect(s.sim, p, racing.DefaultOptions())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	resp := RacingResponse{Prefix: prefix, Ambiguous: rep.Ambiguous, Convergences: len(rep.Solutions)}
	for _, n := range rep.AmbiguousNodes {
		resp.AmbiguousRouters = append(resp.AmbiguousRouters, s.net.Node(n).Name)
	}
	writeJSON(w, http.StatusOK, resp)
}
