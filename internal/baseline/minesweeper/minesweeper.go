// Package minesweeper reimplements the algorithmic core of formula-based
// configuration verification (Minesweeper, §2(ii)): encode the ENTIRE
// network's route propagation for a prefix into one logical formula with
// symbolic link-failure variables, then hand the whole thing to a solver.
// The formula covers every device, session and failure case at once, which
// is precisely why it grows so much faster than Hoyan's per-prefix local
// conditions (Appendix F compares formula sizes: 230k–4.7M versus 242–543).
//
// The encoding is a bounded unrolling (network diameter rounds) of:
//
//	R_n^t ↔ R_n^{t-1} ∨ ⋁_{sessions u→n that pass policy} (R_u^{t-1} ∧ Alive(u,n))
//
// with iBGP session aliveness itself encoded as unrolled IGP reachability
// over symbolic links — the quadratic sub-encoding that dominates the
// formula. k-failure tolerance is a SAT query: do ≤k failed links exist
// under which the target's R variable is false?
package minesweeper

import (
	"fmt"
	"time"

	"hoyan/internal/behavior"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/netaddr"
	"hoyan/internal/route"
	"hoyan/internal/sat"
	"hoyan/internal/topo"
)

// Verifier encodes and solves queries for one network.
type Verifier struct {
	Net   *topo.Network
	Snap  config.Snapshot
	Model *core.Model
	// ConflictBudget bounds the SAT search (0 = unlimited), emulating the
	// >24h timeouts of Tables 4/5.
	ConflictBudget int64
	// Deadline bounds a check's wall time (0 = none).
	Deadline time.Duration
}

// ErrTimeout reports an exhausted time budget.
var ErrTimeout = sat.ErrLimit

// New builds the verifier.
func New(net *topo.Network, snap config.Snapshot, reg *behavior.Registry) (*Verifier, error) {
	m, err := core.Assemble(net, snap, reg)
	if err != nil {
		return nil, err
	}
	return &Verifier{Net: net, Snap: snap, Model: m}, nil
}

// Encoding is a monolithic CNF for one prefix plus the variable maps
// needed to pose queries.
type Encoding struct {
	CNF *sat.CNF
	// LinkAlive[l] is the CNF literal for "link l is up".
	LinkAlive []sat.Lit
	// Reach[n] is "node n holds a route for the prefix" at the final
	// round.
	Reach []sat.Lit
	// Clauses reports the formula size (the Appendix F metric).
	Clauses int
}

// Encode builds the whole-network formula for a prefix.
func (v *Verifier) Encode(prefix netaddr.Prefix) (*Encoding, error) {
	n := v.Net.NumNodes()
	diameter := n // safe unrolling depth
	c := sat.NewCNF()
	enc := &Encoding{CNF: c}

	// Symbolic link variables.
	enc.LinkAlive = make([]sat.Lit, v.Net.NumLinks())
	for l := range enc.LinkAlive {
		enc.LinkAlive[l] = c.NewVar()
	}

	// iBGP session aliveness: unrolled IGP reachability P[u][w][t] —
	// "w reachable from u over IS-IS links within t hops".
	isis := func(id topo.NodeID) bool {
		cfg := v.Model.Configs[id]
		return cfg.ISIS != nil && cfg.ISIS.Enabled
	}
	igpReach := func(u topo.NodeID) []sat.Lit {
		// BFS-style unrolling from u; returns final-round literals.
		cur := make([]sat.Lit, n)
		for w := 0; w < n; w++ {
			cur[w] = c.NewVar()
			if topo.NodeID(w) == u {
				c.Add(cur[w])
			} else {
				c.Add(cur[w].Neg())
			}
		}
		depth := n
		for t := 1; t <= depth; t++ {
			next := make([]sat.Lit, n)
			for w := 0; w < n; w++ {
				next[w] = c.NewVar()
				// next[w] ↔ cur[w] ∨ ⋁_{adj (x,w), isis both} (cur[x] ∧ alive)
				var terms []sat.Lit
				terms = append(terms, cur[w])
				if isis(topo.NodeID(w)) {
					for _, ad := range v.Net.Neighbors(topo.NodeID(w)) {
						if !isis(ad.Peer) {
							continue
						}
						and := c.NewVar()
						// and ↔ cur[peer] ∧ alive(link)
						c.Add(and.Neg(), cur[ad.Peer])
						c.Add(and.Neg(), enc.LinkAlive[ad.Link])
						c.Add(and, cur[ad.Peer].Neg(), enc.LinkAlive[ad.Link].Neg())
						terms = append(terms, and)
					}
				}
				addOrDef(c, next[w], terms)
			}
			cur = next
		}
		return cur
	}
	igpFrom := map[topo.NodeID][]sat.Lit{}

	// Sessions that can carry this prefix (policy pre-screen on the
	// origin route — the attribute-abstraction Minesweeper also makes for
	// scale).
	type sess struct {
		from, to topo.NodeID
		alive    sat.Lit
	}
	var sessions []sess
	probe := route.New(prefix, route.EBGP, 0)
	for _, node := range v.Net.Nodes() {
		dev := v.Model.Devices[node.ID]
		if dev.Cfg.BGP == nil {
			continue
		}
		for _, nb := range dev.Cfg.BGP.Neighbors {
			peerID, ok := v.Model.Resolve(nb.PeerName)
			if !ok {
				continue
			}
			peer := v.Model.Devices[peerID]
			if _, ok := peer.Neighbor(node.Name); !ok {
				continue
			}
			pr := probe
			pr.OriginNode = node.ID
			eg := dev.ProcessEgress(pr, peer)
			if eg.Verdict != behavior.Pass {
				continue
			}
			if ing := peer.ProcessIngress(eg.Route, dev); ing.Verdict != behavior.Pass {
				continue
			}
			var alive sat.Lit
			if dev.SessionTypeTo(peer) == behavior.SessEBGP || !isis(node.ID) || !isis(peerID) {
				// Direct session: any parallel link up.
				var links []sat.Lit
				for _, ad := range v.Net.Neighbors(node.ID) {
					if ad.Peer == peerID {
						links = append(links, enc.LinkAlive[ad.Link])
					}
				}
				if len(links) == 0 {
					continue
				}
				alive = c.NewVar()
				addOrDef(c, alive, links)
			} else {
				// iBGP over IS-IS: both directions reachable.
				if igpFrom[node.ID] == nil {
					igpFrom[node.ID] = igpReach(node.ID)
				}
				if igpFrom[peerID] == nil {
					igpFrom[peerID] = igpReach(peerID)
				}
				alive = c.NewVar()
				a1 := igpFrom[node.ID][peerID]
				a2 := igpFrom[peerID][node.ID]
				c.Add(alive.Neg(), a1)
				c.Add(alive.Neg(), a2)
				c.Add(alive, a1.Neg(), a2.Neg())
			}
			sessions = append(sessions, sess{from: node.ID, to: peerID, alive: alive})
		}
	}

	// Route propagation unrolling.
	origins := map[topo.NodeID]bool{}
	for _, o := range v.Model.AnnouncersOf(prefix) {
		origins[o] = true
	}
	cur := make([]sat.Lit, n)
	for w := 0; w < n; w++ {
		cur[w] = c.NewVar()
		if origins[topo.NodeID(w)] {
			c.Add(cur[w])
		} else {
			c.Add(cur[w].Neg())
		}
	}
	for t := 1; t <= diameter; t++ {
		next := make([]sat.Lit, n)
		for w := 0; w < n; w++ {
			next[w] = c.NewVar()
			terms := []sat.Lit{cur[w]}
			for _, se := range sessions {
				if se.to != topo.NodeID(w) {
					continue
				}
				and := c.NewVar()
				c.Add(and.Neg(), cur[se.from])
				c.Add(and.Neg(), se.alive)
				c.Add(and, cur[se.from].Neg(), se.alive.Neg())
				terms = append(terms, and)
			}
			addOrDef(c, next[w], terms)
		}
		cur = next
	}
	enc.Reach = cur
	enc.Clauses = c.NumClauses()
	return enc, nil
}

// addOrDef adds def ↔ ⋁terms.
func addOrDef(c *sat.CNF, def sat.Lit, terms []sat.Lit) {
	cl := make([]sat.Lit, 0, len(terms)+1)
	cl = append(cl, def.Neg())
	for _, t := range terms {
		c.Add(def, t.Neg())
		cl = append(cl, t)
	}
	c.Add(cl...)
}

// Report mirrors the Batfish baseline's result shape.
type Report struct {
	Tolerant bool
	Witness  topo.FailureScenario
	// Clauses is the monolithic formula size.
	Clauses int
}

// CheckRouteReach asks whether any ≤k-link failure removes the target's
// route — one big SAT query over the whole-network encoding.
func (v *Verifier) CheckRouteReach(prefix netaddr.Prefix, target string, k int) (Report, error) {
	node, ok := v.Net.NodeByName(target)
	if !ok {
		return Report{}, fmt.Errorf("minesweeper: unknown node %q", target)
	}
	enc, err := v.Encode(prefix)
	if err != nil {
		return Report{}, err
	}
	c := enc.CNF
	// failed_l ↔ ¬alive_l; at most k failed.
	failed := make([]sat.Lit, len(enc.LinkAlive))
	for i, a := range enc.LinkAlive {
		failed[i] = c.NewVar()
		c.Add(failed[i], a)
		c.Add(failed[i].Neg(), a.Neg())
	}
	c.AtMostK(failed, k)
	// Violation: target unreachable.
	c.Add(enc.Reach[node.ID].Neg())

	s := sat.NewSolver(c)
	if v.ConflictBudget > 0 {
		s.SetConflictBudget(v.ConflictBudget)
	}
	if v.Deadline > 0 {
		s.SetDeadline(time.Now().Add(v.Deadline))
	}
	model, satisfiable, err := s.Solve()
	if err != nil {
		return Report{Clauses: enc.Clauses}, err
	}
	rep := Report{Tolerant: !satisfiable, Clauses: enc.Clauses}
	if satisfiable {
		for l, a := range enc.LinkAlive {
			if !model[a.Var()] {
				rep.Witness = append(rep.Witness, topo.LinkID(l))
			}
		}
	}
	return rep, nil
}
