// Package baseline_test cross-checks the three reimplemented comparators
// against the Hoyan engine on shared networks: all four must agree on
// k-failure verdicts wherever their abstractions are exact, and their cost
// metrics must exhibit the scaling shapes Tables 4/5 report.
package baseline_test

import (
	"testing"

	"hoyan/internal/baseline/batfish"
	"hoyan/internal/baseline/minesweeper"
	"hoyan/internal/baseline/plankton"
	"hoyan/internal/behavior"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/netaddr"
	"hoyan/internal/topo"
)

// diamond builds the Figure 4 eBGP network (exact for every baseline's
// abstraction: no iBGP, no policies).
func diamond(t testing.TB) (*topo.Network, config.Snapshot) {
	t.Helper()
	net := topo.NewNetwork()
	a := net.MustAddNode(topo.Node{Name: "A", AS: 100, Vendor: behavior.VendorAlpha})
	b := net.MustAddNode(topo.Node{Name: "B", AS: 200, Vendor: behavior.VendorAlpha})
	c := net.MustAddNode(topo.Node{Name: "C", AS: 300, Vendor: behavior.VendorAlpha})
	d := net.MustAddNode(topo.Node{Name: "D", AS: 400, Vendor: behavior.VendorAlpha})
	net.MustAddLink(a, c, 10) // L1
	net.MustAddLink(a, b, 10) // L2
	net.MustAddLink(b, c, 10) // L3
	net.MustAddLink(c, d, 10) // L4
	snap := config.Snapshot{}
	for name, text := range map[string]string{
		"A": "hostname A\nvendor alpha\nrouter bgp 100\n network 10.0.0.0/8\n neighbor B remote-as 200\n neighbor C remote-as 300\n",
		"B": "hostname B\nvendor alpha\nrouter bgp 200\n neighbor A remote-as 100\n neighbor C remote-as 300\n",
		"C": "hostname C\nvendor alpha\nrouter bgp 300\n neighbor A remote-as 100\n neighbor B remote-as 200\n neighbor D remote-as 400\n",
		"D": "hostname D\nvendor alpha\nrouter bgp 400\n neighbor C remote-as 300\n",
	} {
		dcfg, err := config.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		snap[name] = dcfg
	}
	return net, snap
}

func hoyanTolerant(t testing.TB, net *topo.Network, snap config.Snapshot, prefix netaddr.Prefix, target string, k int) bool {
	t.Helper()
	m, err := core.Assemble(net, snap, behavior.TrueProfiles())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.K = k
	res, err := core.NewSimulator(m, opts).Run(prefix)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := m.Resolve(target)
	return res.KTolerant(node, core.AnyRouteTo(prefix), k)
}

func TestAllVerifiersAgreeOnDiamond(t *testing.T) {
	net, snap := diamond(t)
	p := netaddr.MustParse("10.0.0.0/8")
	bf := batfish.New(net, snap, behavior.TrueProfiles())
	ms, err := minesweeper.New(net, snap, behavior.TrueProfiles())
	if err != nil {
		t.Fatal(err)
	}
	pk := plankton.New(net, snap, behavior.TrueProfiles())

	cases := []struct {
		target string
		k      int
		want   bool // tolerant?
	}{
		{"D", 0, true},
		{"D", 1, false}, // L4 is a single point of failure
		{"C", 1, true},  // two paths into C
		{"C", 2, false},
		{"B", 1, true},
		{"B", 2, false},
	}
	for _, cse := range cases {
		want := hoyanTolerant(t, net, snap, p, cse.target, cse.k)
		if want != cse.want {
			t.Fatalf("hoyan(%s,k=%d) = %v, want %v", cse.target, cse.k, want, cse.want)
		}
		bfRep, err := bf.CheckRouteReach(p, cse.target, cse.k)
		if err != nil {
			t.Fatal(err)
		}
		if bfRep.Tolerant != want {
			t.Errorf("batfish(%s,k=%d) = %v, want %v", cse.target, cse.k, bfRep.Tolerant, want)
		}
		msRep, err := ms.CheckRouteReach(p, cse.target, cse.k)
		if err != nil {
			t.Fatal(err)
		}
		if msRep.Tolerant != want {
			t.Errorf("minesweeper(%s,k=%d) = %v, want %v", cse.target, cse.k, msRep.Tolerant, want)
		}
		pkRep, err := pk.CheckRouteReach(p, cse.target, cse.k)
		if err != nil {
			t.Fatal(err)
		}
		if pkRep.Tolerant != want {
			t.Errorf("plankton(%s,k=%d) = %v, want %v", cse.target, cse.k, pkRep.Tolerant, want)
		}
	}
}

func TestBatfishScenarioCountsAreCombinatorial(t *testing.T) {
	net, snap := diamond(t)
	p := netaddr.MustParse("10.0.0.0/8")
	bf := batfish.New(net, snap, behavior.TrueProfiles())
	// C is 1-tolerant: k=1 explores C(4,0)+C(4,1)=5 scenarios.
	rep, err := bf.CheckRouteReach(p, "C", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tolerant || rep.Scenarios != 5 {
		t.Fatalf("k=1 scenarios = %d, want 5", rep.Scenarios)
	}
	// k=2 stops early at the first violating pair but must explore beyond
	// the k=1 budget.
	rep2, err := bf.CheckRouteReach(p, "C", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Tolerant || rep2.Scenarios <= 5 {
		t.Fatalf("k=2 rep %+v", rep2)
	}
	if len(rep2.Witness) != 2 {
		t.Fatalf("witness %v", rep2.Witness)
	}
}

func TestBatfishPacketReach(t *testing.T) {
	net, snap := diamond(t)
	p := netaddr.MustParse("10.0.0.0/8")
	bf := batfish.New(net, snap, behavior.TrueProfiles())
	rep, err := bf.CheckPacketReach(p, "D", "A", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tolerant {
		t.Fatal("packets D→A must flow with all links up")
	}
	rep1, err := bf.CheckPacketReach(p, "D", "A", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Tolerant {
		t.Fatal("L4 failure must break D→A packets")
	}
}

func TestMinesweeperWitnessAndFormulaGrowth(t *testing.T) {
	net, snap := diamond(t)
	p := netaddr.MustParse("10.0.0.0/8")
	ms, err := minesweeper.New(net, snap, behavior.TrueProfiles())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ms.CheckRouteReach(p, "D", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tolerant {
		t.Fatal("D is not 1-tolerant")
	}
	// Witness must contain L4 (link 3).
	foundL4 := false
	for _, l := range rep.Witness {
		if l == 3 {
			foundL4 = true
		}
	}
	if !foundL4 {
		t.Fatalf("witness %v must fail L4", rep.Witness)
	}
	if rep.Clauses < 100 {
		t.Fatalf("monolithic formula suspiciously small: %d clauses", rep.Clauses)
	}

	// Appendix F shape: the monolithic formula dwarfs Hoyan's per-prefix
	// reachability formula on the same query.
	m, _ := core.Assemble(net, snap, behavior.TrueProfiles())
	res, _ := core.NewSimulator(m, core.DefaultOptions()).Run(p)
	d, _ := m.Resolve("D")
	_, hoyanLen := res.MinFailuresToLose(d, core.AnyRouteTo(p))
	if hoyanLen*10 > rep.Clauses {
		t.Fatalf("expected ≥10x formula-size gap: hoyan=%d minesweeper=%d", hoyanLen, rep.Clauses)
	}
}

func TestMinesweeperFormulaGrowsWithNetwork(t *testing.T) {
	small := mustWAN(t, gen.Small())
	p := small.Prefixes()[0]
	ms, err := minesweeper.New(small.Net, small.Snap, behavior.TrueProfiles())
	if err != nil {
		t.Fatal(err)
	}
	encSmall, err := ms.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	netD, snapD := diamond(t)
	msD, _ := minesweeper.New(netD, snapD, behavior.TrueProfiles())
	encD, err := msD.Encode(netaddr.MustParse("10.0.0.0/8"))
	if err != nil {
		t.Fatal(err)
	}
	if encSmall.Clauses <= 4*encD.Clauses {
		t.Fatalf("formula must blow up with network size: %d vs %d", encSmall.Clauses, encD.Clauses)
	}
}

func mustWAN(t testing.TB, p gen.Params) *gen.WAN {
	t.Helper()
	w, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPlanktonDetectsRacingNatively(t *testing.T) {
	w := mustWAN(t, gen.Small())
	pk := plankton.New(w.Net, w.Snap, behavior.TrueProfiles())
	p := w.Prefixes()[0]
	rep, err := pk.Explore(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ambiguous {
		t.Fatal("clean WAN must have a unique convergence")
	}
	if rep.ConvergedStates != 1 || rep.StatesExplored == 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestPlanktonStateBudget(t *testing.T) {
	w := mustWAN(t, gen.Small())
	pk := plankton.New(w.Net, w.Snap, behavior.TrueProfiles())
	pk.MaxStates = 1
	if _, err := pk.Explore(w.Prefixes()[0], nil, nil); err == nil {
		t.Fatal("tiny budget must error (timeout emulation)")
	}
}

func TestUnknownTargets(t *testing.T) {
	net, snap := diamond(t)
	p := netaddr.MustParse("10.0.0.0/8")
	bf := batfish.New(net, snap, behavior.TrueProfiles())
	if _, err := bf.CheckRouteReach(p, "nope", 0); err == nil {
		t.Fatal("batfish unknown target")
	}
	ms, _ := minesweeper.New(net, snap, behavior.TrueProfiles())
	if _, err := ms.CheckRouteReach(p, "nope", 0); err == nil {
		t.Fatal("minesweeper unknown target")
	}
	pk := plankton.New(net, snap, behavior.TrueProfiles())
	if _, err := pk.CheckRouteReach(p, "nope", 0); err == nil {
		t.Fatal("plankton unknown target")
	}
}
