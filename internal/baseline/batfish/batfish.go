// Package batfish reimplements the algorithmic core of simulation-based
// configuration verification (Batfish, §2(i)): simulate the control plane
// to convergence under ONE concrete environment and check the resulting
// data plane. Verifying k-failure tolerance therefore requires enumerating
// all C(n,0)+…+C(n,k) failure scenarios and re-simulating each — the
// scaling wall Tables 4 and 5 measure.
//
// Each per-environment simulation reuses the same propagation engine as
// Hoyan but with k=0 (no conditions to track) on a copy of the topology
// with the failed links removed, which is exactly the work a
// simulate-one-snapshot verifier performs.
package batfish

import (
	"errors"
	"fmt"
	"time"

	"hoyan/internal/behavior"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/dataplane"
	"hoyan/internal/netaddr"
	"hoyan/internal/topo"
)

// Verifier holds the inputs shared across scenario simulations.
type Verifier struct {
	Net  *topo.Network
	Snap config.Snapshot
	Reg  *behavior.Registry
	// Deadline bounds a check's wall time (zero = none); exceeding it
	// returns ErrTimeout, emulating the >24h entries of Tables 4/5.
	Deadline time.Duration
}

// ErrTimeout reports an exhausted time budget.
var ErrTimeout = errors.New("batfish: time budget exhausted")

// New builds a verifier.
func New(net *topo.Network, snap config.Snapshot, reg *behavior.Registry) *Verifier {
	return &Verifier{Net: net, Snap: snap, Reg: reg}
}

// networkWithout copies the topology minus the failed links. Node IDs are
// preserved (nodes are added in the same order); link IDs are renumbered,
// which is irrelevant at k=0 where no conditions are tracked.
func (v *Verifier) networkWithout(failed topo.FailureScenario) *topo.Network {
	drop := map[topo.LinkID]bool{}
	for _, l := range failed {
		drop[l] = true
	}
	out := topo.NewNetwork()
	for _, n := range v.Net.Nodes() {
		out.MustAddNode(*n)
	}
	for _, l := range v.Net.Links() {
		if !drop[l.ID] {
			out.MustAddLink(l.A, l.B, l.Weight)
		}
	}
	return out
}

// concreteOptions disables all uncertainty handling: one environment, no
// alternatives beyond the converged best paths.
func concreteOptions() core.Options {
	o := core.DefaultOptions()
	o.K = 0
	return o
}

// SimulateScenario runs one converged simulation under a concrete failure
// scenario and returns the result (whose conditions are trivially
// evaluated at all-up of the REDUCED topology).
func (v *Verifier) SimulateScenario(prefix netaddr.Prefix, failed topo.FailureScenario) (*core.Result, error) {
	net := v.networkWithout(failed)
	m, err := core.Assemble(net, v.Snap, v.Reg)
	if err != nil {
		return nil, err
	}
	return core.NewSimulator(m, concreteOptions()).Run(prefix)
}

// Report summarizes a k-failure check.
type Report struct {
	// Tolerant is true when the property held in every scenario.
	Tolerant bool
	// Witness is a violating scenario when not tolerant.
	Witness topo.FailureScenario
	// Scenarios is how many environments were simulated — the C(n,k) cost.
	Scenarios int
}

// CheckRouteReach verifies that `target` holds a route to the prefix under
// every failure scenario of at most k links.
func (v *Verifier) CheckRouteReach(prefix netaddr.Prefix, target string, k int) (Report, error) {
	return v.check(prefix, k, func(res *core.Result, net *topo.Network) (bool, error) {
		node, ok := net.NodeByName(target)
		if !ok {
			return false, fmt.Errorf("batfish: unknown node %q", target)
		}
		return res.Reachable(node.ID, core.AnyRouteTo(prefix)), nil
	})
}

// CheckPacketReach verifies packet delivery from src to the prefix's
// gateway under every failure scenario of at most k links.
func (v *Verifier) CheckPacketReach(prefix netaddr.Prefix, src, gateway string, k int) (Report, error) {
	return v.check(prefix, k, func(res *core.Result, net *topo.Network) (bool, error) {
		s, ok1 := net.NodeByName(src)
		g, ok2 := net.NodeByName(gateway)
		if !ok1 || !ok2 {
			return false, fmt.Errorf("batfish: unknown node %q/%q", src, gateway)
		}
		fib := dataplane.Build(res)
		return fib.Reachable(s.ID, 0, prefix.Addr+1, g.ID), nil
	})
}

func (v *Verifier) check(prefix netaddr.Prefix, k int, prop func(*core.Result, *topo.Network) (bool, error)) (Report, error) {
	rep := Report{Tolerant: true}
	start := time.Now()
	var firstErr error
	for kk := 0; kk <= k && rep.Tolerant && firstErr == nil; kk++ {
		v.Net.EnumerateFailures(kk, func(fs topo.FailureScenario) bool {
			if v.Deadline > 0 && time.Since(start) > v.Deadline {
				firstErr = ErrTimeout
				return false
			}
			rep.Scenarios++
			net := v.networkWithout(fs)
			m, err := core.Assemble(net, v.Snap, v.Reg)
			if err != nil {
				firstErr = err
				return false
			}
			res, err := core.NewSimulator(m, concreteOptions()).Run(prefix)
			if err != nil {
				firstErr = err
				return false
			}
			ok, err := prop(res, net)
			if err != nil {
				firstErr = err
				return false
			}
			if !ok {
				rep.Tolerant = false
				rep.Witness = fs
				return false
			}
			return true
		})
	}
	return rep, firstErr
}
