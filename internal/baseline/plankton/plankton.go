// Package plankton reimplements the algorithmic core of model-checking
// based configuration verification (Plankton, §2(ii)): explicit-state
// exploration of route-update arrival orders with partial-order reduction.
// It supports update racing natively (every interleaving is explored), but
// k-failure coverage still requires enumerating failure scenarios and
// re-exploring each — the paper's point that Plankton "is not scalable to
// handle failures without topology symmetry".
//
// States are maps from node to its currently selected candidate route;
// events are per-router inbox processings: the chosen router atomically
// selects the best candidate whose predecessor is currently selected, and
// withdrawal cascades re-validate downstream selections. Exploring router
// processing orders (rather than individual message orders) is the
// partial-order reduction: messages to the same router commute, so only
// the router interleaving matters. Visited states are memoized.
package plankton

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"hoyan/internal/behavior"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/netaddr"
	"hoyan/internal/racing"
	"hoyan/internal/route"
	"hoyan/internal/topo"
)

// Verifier explores convergence state spaces.
type Verifier struct {
	Net  *topo.Network
	Snap config.Snapshot
	Reg  *behavior.Registry
	// MaxStates bounds the exploration (0 = 1<<20), emulating timeouts.
	MaxStates int
	// Deadline bounds a CheckRouteReach's wall time (zero = none).
	Deadline time.Duration
}

// ErrTimeout reports an exhausted time budget.
var ErrTimeout = errors.New("plankton: time budget exhausted")

// New builds the verifier.
func New(net *topo.Network, snap config.Snapshot, reg *behavior.Registry) *Verifier {
	return &Verifier{Net: net, Snap: snap, Reg: reg}
}

// Report summarizes one exploration.
type Report struct {
	// ConvergedStates is the number of distinct stable convergences.
	ConvergedStates int
	// StatesExplored counts all visited intermediate states (the model-
	// checking cost).
	StatesExplored int
	// PropertyHolds is true when the checked property held in every
	// stable state.
	PropertyHolds bool
	// Ambiguous is true when more than one stable convergence exists.
	Ambiguous bool
}

// state is the per-node selected candidate (-1 = none), serialized for
// memoization.
type state []int

func (s state) key() string {
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// Explore floods the prefix's candidates (reusing the racing package's
// flood over the session graph) and explores delivery interleavings under
// one concrete failure scenario. prop is evaluated on each stable state:
// it receives the selected candidate per node.
func (v *Verifier) Explore(prefix netaddr.Prefix, failed topo.FailureScenario, prop func(sel map[topo.NodeID]*racing.Candidate) bool) (Report, error) {
	maxStates := v.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 20
	}
	net := v.networkWithout(failed)
	m, err := core.Assemble(net, v.Snap, v.Reg)
	if err != nil {
		return Report{}, err
	}
	sim := core.NewSimulator(m, core.DefaultOptions())
	// Flood candidates (policies applied, no selection drops).
	rep0, err := racing.Detect(sim, prefix, racing.DefaultOptions())
	if err != nil {
		return Report{}, err
	}
	cands := rep0.Candidates

	better := func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if route.Better(ca.Route, cb.Route, 0, 0) {
			return true
		}
		if route.Better(cb.Route, ca.Route, 0, 0) {
			return false
		}
		if len(ca.Path) != len(cb.Path) {
			return len(ca.Path) < len(cb.Path)
		}
		return a < b
	}

	n := v.Net.NumNodes()
	start := make(state, n)
	for i := range start {
		start[i] = -1
	}
	// Origins select their local candidate immediately.
	for _, c := range cands {
		if c.Pred < 0 {
			if start[c.Node] == -1 || better(c.ID, start[c.Node]) {
				start[c.Node] = c.ID
			}
		}
	}

	// candidatesAtNode precomputed for the processing step.
	perNode := make([][]int, n)
	for _, c := range cands {
		perNode[c.Node] = append(perNode[c.Node], c.ID)
	}
	// process returns cur with node's inbox handled: select the best
	// candidate whose predecessor is selected, then cascade withdrawals.
	process := func(cur state, node int) state {
		best := -1
		for _, id := range perNode[node] {
			c := cands[id]
			if c.Pred >= 0 && cur[cands[c.Pred].Node] != c.Pred {
				continue
			}
			if best == -1 || better(id, best) {
				best = id
			}
		}
		if best == cur[node] {
			return nil // no change
		}
		next := append(state(nil), cur...)
		next[node] = best
		v.cascade(next, cands, better)
		if next.key() == cur.key() {
			return nil
		}
		return next
	}

	report := Report{PropertyHolds: true}
	visited := map[string]bool{}
	stable := map[string]bool{}
	stack := []state{start}
	visited[start.key()] = true
	for len(stack) > 0 {
		if report.StatesExplored >= maxStates {
			return report, fmt.Errorf("plankton: state budget %d exhausted", maxStates)
		}
		report.StatesExplored++
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// Enabled routers.
		var enabled []int
		results := map[int]state{}
		for node := 0; node < n; node++ {
			if next := process(cur, node); next != nil {
				enabled = append(enabled, node)
				results[node] = next
			}
		}
		progressed := len(enabled) > 0
		// Persistent-set reduction: pick the lowest enabled router X; if
		// its processing commutes with every other enabled router's
		// (two-step results agree in both orders), only X's order matters
		// and no branch is needed. Otherwise branch on X and each
		// conflicting router.
		var explore []int
		if len(enabled) > 0 {
			x := enabled[0]
			explore = []int{x}
			for _, y := range enabled[1:] {
				xy := process2(process, results[x], y)
				yx := process2(process, results[y], x)
				if xy.key() != yx.key() {
					explore = append(explore, y)
				}
			}
		}
		for _, node := range explore {
			next := results[node]
			k := next.key()
			if !visited[k] {
				visited[k] = true
				stack = append(stack, next)
			}
		}
		if !progressed {
			k := cur.key()
			if !stable[k] {
				stable[k] = true
				report.ConvergedStates++
				sel := map[topo.NodeID]*racing.Candidate{}
				for node, id := range cur {
					if id >= 0 {
						sel[topo.NodeID(node)] = &cands[id]
					}
				}
				if prop != nil && !prop(sel) {
					report.PropertyHolds = false
				}
			}
		}
	}
	report.Ambiguous = report.ConvergedStates > 1
	return report, nil
}

// cascade re-validates selections after a change: any node selecting a
// candidate whose predecessor is no longer selected reverts to its best
// still-valid candidate.
func (v *Verifier) cascade(s state, cands []racing.Candidate, better func(a, b int) bool) {
	changed := true
	for changed {
		changed = false
		for node := range s {
			id := s[node]
			if id < 0 {
				continue
			}
			c := cands[id]
			if c.Pred >= 0 && s[cands[c.Pred].Node] != c.Pred {
				// Fallback: best candidate whose predecessor holds.
				s[node] = -1
				for _, alt := range candidatesAt(cands, topo.NodeID(node)) {
					ca := cands[alt]
					if ca.Pred >= 0 && s[cands[ca.Pred].Node] != ca.Pred {
						continue
					}
					if s[node] == -1 || better(alt, s[node]) {
						s[node] = alt
					}
				}
				changed = true
			}
		}
	}
}

// process2 applies a processing step to a state, treating "no change" as
// identity (for commutation checks).
func process2(process func(state, int) state, s state, node int) state {
	if next := process(s, node); next != nil {
		return next
	}
	return s
}

func candidatesAt(cands []racing.Candidate, node topo.NodeID) []int {
	var out []int
	for _, c := range cands {
		if c.Node == node {
			out = append(out, c.ID)
		}
	}
	sort.Ints(out)
	return out
}

func (v *Verifier) networkWithout(failed topo.FailureScenario) *topo.Network {
	drop := map[topo.LinkID]bool{}
	for _, l := range failed {
		drop[l] = true
	}
	out := topo.NewNetwork()
	for _, n := range v.Net.Nodes() {
		out.MustAddNode(*n)
	}
	for _, l := range v.Net.Links() {
		if !drop[l.ID] {
			out.MustAddLink(l.A, l.B, l.Weight)
		}
	}
	return out
}

// KFailureReport aggregates exploration over all ≤k failure scenarios.
type KFailureReport struct {
	Tolerant  bool
	Witness   topo.FailureScenario
	Scenarios int
	States    int
}

// CheckRouteReach verifies that target selects some route to the prefix in
// every stable convergence of every ≤k-failure scenario.
func (v *Verifier) CheckRouteReach(prefix netaddr.Prefix, target string, k int) (KFailureReport, error) {
	node, ok := v.Net.NodeByName(target)
	if !ok {
		return KFailureReport{}, fmt.Errorf("plankton: unknown node %q", target)
	}
	rep := KFailureReport{Tolerant: true}
	start := time.Now()
	var firstErr error
	for kk := 0; kk <= k && rep.Tolerant && firstErr == nil; kk++ {
		v.Net.EnumerateFailures(kk, func(fs topo.FailureScenario) bool {
			if v.Deadline > 0 && time.Since(start) > v.Deadline {
				firstErr = ErrTimeout
				return false
			}
			rep.Scenarios++
			r, err := v.Explore(prefix, fs, func(sel map[topo.NodeID]*racing.Candidate) bool {
				_, has := sel[node.ID]
				return has
			})
			if err != nil {
				firstErr = err
				return false
			}
			rep.States += r.StatesExplored
			if !r.PropertyHolds || r.ConvergedStates == 0 {
				rep.Tolerant = false
				rep.Witness = fs
				return false
			}
			return true
		})
	}
	return rep, firstErr
}
