// Update racing: reproduce the Figure 1 incident. Two gateways in AS 200
// announce the same prefix; A prefers C's route via local-preference 300,
// B raises D's to 500, and a weight rule makes B prefer whatever A sends.
// The converged state then depends on which update arrives first — the
// class of bug no snapshot simulation can see.
package main

import (
	"fmt"
	"log"

	"hoyan"
)

func build(withWeightRule bool) *hoyan.Network {
	net := hoyan.NewNetwork()
	net.AddRouter(hoyan.Router{Name: "A", AS: 100, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "B", AS: 100, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "C", AS: 200, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "D", AS: 200, Vendor: "alpha"})
	net.AddLink("A", "B", 10)
	net.AddLink("C", "A", 10)
	net.AddLink("D", "B", 10)

	bCfg := `hostname B
router bgp 100
 neighbor A remote-as 100
 neighbor D remote-as 200
 neighbor D route-policy LP500 in
route-policy LP500 permit 10
 set local-preference 500`
	if withWeightRule {
		bCfg += `
route-policy W100 permit 10
 set weight 100`
		bCfg = bCfg + "\n" // separate policies from the neighbor binding
		bCfg += `router bgp 100
 neighbor A route-policy W100 in`
	}

	net.SetConfig("A", `hostname A
router bgp 100
 neighbor B remote-as 100
 neighbor C remote-as 200
 neighbor C route-policy LP300 in
route-policy LP300 permit 10
 set local-preference 300`)
	net.SetConfig("B", bCfg)
	net.SetConfig("C", `hostname C
router bgp 200
 network 10.0.1.0/24
 neighbor A remote-as 100`)
	net.SetConfig("D", `hostname D
router bgp 200
 network 10.0.1.0/24
 neighbor B remote-as 100`)
	return net
}

func check(label string, net *hoyan.Network) {
	v, err := net.Verifier(hoyan.Options{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := v.CheckRacing("10.0.1.0/24")
	if err != nil {
		log.Fatal(err)
	}
	if rep.Ambiguous {
		fmt.Printf("%s: AMBIGUOUS — %d stable convergences, order-dependent at %v\n",
			label, rep.Convergences, rep.AmbiguousRouters)
	} else {
		fmt.Printf("%s: deterministic convergence\n", label)
	}
}

func main() {
	fmt.Println("Figure 1 scenario: two origins for 10.0.1.0/24 in AS 200")
	check("with the weight rule  ", build(true))
	check("without the weight rule", build(false))
	fmt.Println("=> the weight rule contradicts the local-pref design; whichever update")
	fmt.Println("   reaches B first wins, so the rollout would be a coin flip (§7.1).")
}
