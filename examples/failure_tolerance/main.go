// Failure-tolerance audit: reproduce the §7.1 static-preference incident.
// A provider edge holds a static route (preference 1) for a service prefix
// while an old eBGP session is configured at preference 30. The "harmless"
// fleet-wide update that moves static preferences to 150 silently hands
// the prefix to eBGP — exactly the violation Hoyan caught before rollout.
//
// The example runs the update-checking workflow of Figure 2: clone the
// online snapshot, apply the proposed update, verify both, and diff the
// intent.
package main

import (
	"fmt"
	"log"

	"hoyan"
)

func build() *hoyan.Network {
	net := hoyan.NewNetwork()
	net.AddRouter(hoyan.Router{Name: "pe", AS: 64500, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "legacy-gw", AS: 65001, Vendor: "beta"})
	net.AddRouter(hoyan.Router{Name: "core", AS: 64500, Vendor: "alpha"})
	net.AddLink("pe", "legacy-gw", 10)
	net.AddLink("pe", "core", 10)

	// The PE prefers its static toward the core (preference 1) over the
	// legacy gateway's eBGP announcement (preference 30) — the intended
	// state that has "worked smoothly for years".
	net.SetConfig("pe", `hostname pe
router bgp 64500
 neighbor legacy-gw remote-as 65001
 neighbor legacy-gw preference 30
 neighbor core remote-as 64500
router isis
 level 2
ip route 10.9.0.0/16 core preference 1`)
	net.SetConfig("legacy-gw", `hostname legacy-gw
vendor beta
router bgp 65001
 network 10.9.0.0/16
 neighbor pe remote-as 64500`)
	net.SetConfig("core", `hostname core
router bgp 64500
 neighbor pe remote-as 64500
router isis
 level 2`)
	return net
}

func bestAt(v *hoyan.Verifier) hoyan.RouteInfo {
	ri, err := v.BestRoute("10.9.0.0/16", "pe")
	if err != nil {
		log.Fatal(err)
	}
	return ri
}

func main() {
	online := build()

	v0, err := online.Verifier(hoyan.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	before := bestAt(v0)
	fmt.Printf("online state: pe forwards 10.9.0.0/16 via %s (%s, preference %d)\n",
		before.NextHop, before.Protocol, before.Pref)

	// Proposed fleet-wide update: static preference 1 -> 150.
	target := online.Clone()
	if err := target.ApplyUpdate("pe",
		"no ip route 10.9.0.0/16 core",
		"ip route 10.9.0.0/16 core preference 150",
	); err != nil {
		log.Fatal(err)
	}
	v1, err := target.Verifier(hoyan.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	after := bestAt(v1)
	fmt.Printf("target state: pe forwards 10.9.0.0/16 via %s (%s, preference %d)\n",
		after.NextHop, after.Protocol, after.Pref)

	// Update checking (Figure 2): the operator's intent was to renumber
	// preferences, NOT to move traffic. A selection change is the
	// violation signal — the static is "blocked from being activated".
	if before.Protocol != after.Protocol || before.NextHop != after.NextHop {
		fmt.Printf("VIOLATION: the update silently moves traffic from %s/%s to %s/%s\n",
			before.NextHop, before.Protocol, after.NextHop, after.Protocol)
		fmt.Println("=> the update must not be committed as-is (the §7.1 save)")
	} else {
		fmt.Println("update preserves selection — safe to commit")
	}
}
