// VSB tuning: reproduce the Figure 6 story end to end. A vendor-beta
// router silently strips BGP communities on egress; the verifier's naive
// behavior model doesn't know that, so its computed routes diverge from
// the (emulated) production network. The tuner compares extended RIBs and
// per-session update logs, localizes the divergence to the beta router's
// egress, proposes the one-switch patch, and verification accuracy jumps
// to 100%.
package main

import (
	"fmt"
	"log"
	"sort"

	"hoyan"
)

func main() {
	net := hoyan.NewNetwork()
	net.AddRouter(hoyan.Router{Name: "R1", AS: 100, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "R2", AS: 200, Vendor: "beta"})
	net.AddRouter(hoyan.Router{Name: "R3", AS: 300, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "R4", AS: 400, Vendor: "alpha"})
	net.AddLink("R1", "R2", 10)
	net.AddLink("R2", "R3", 10)
	net.AddLink("R3", "R4", 10)

	net.SetConfig("R1", `hostname R1
router bgp 100
 network 10.0.0.0/8
 network 20.0.0.0/8
 neighbor R2 remote-as 200
 neighbor R2 route-policy ADD920 out
route-policy ADD920 permit 10
 set community add 100:920`)
	net.SetConfig("R2", `hostname R2
vendor beta
router bgp 200
 neighbor R1 remote-as 100
 neighbor R3 remote-as 300`)
	net.SetConfig("R3", `hostname R3
router bgp 300
 neighbor R2 remote-as 200
 neighbor R2 route-policy TAG20 in
 neighbor R4 remote-as 400
route-policy TAG20 permit 10
 match prefix-list PL20
 set community add 100:920
route-policy TAG20 permit 20
ip prefix-list PL20 permit 20.0.0.0/8`)
	net.SetConfig("R4", `hostname R4
router bgp 400
 neighbor R3 remote-as 300
 neighbor R3 route-policy NEED920 in
route-policy NEED920 deny 10
 match no-community 100:920
route-policy NEED920 permit 20`)

	// Start from the naive model: every vendor assumed to keep
	// communities (the pre-deployment state of Figure 14).
	registry := hoyan.NaiveProfiles()
	tuner, err := net.NewTuner(registry)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== pre-tune accuracy (fraction of devices whose RIB matches production) ==")
	printAccuracy(tuner)

	fmt.Println("\n== localized mismatches ==")
	ms, err := tuner.Mismatches()
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range ms {
		fmt.Println(" ", m)
	}

	fmt.Println("\n== tuning ==")
	patches, err := tuner.Run(16)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range patches {
		fmt.Println("  applied", p)
	}

	fmt.Println("\n== post-tune accuracy ==")
	printAccuracy(tuner)
}

func printAccuracy(t *hoyan.Tuner) {
	acc, err := t.Accuracy()
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-16s %5.1f%%\n", k, 100*acc[k])
	}
}
