// Quickstart: build the paper's Figure 4 network through the public API
// and ask the headline question — which single link failure would cut
// router D off from subnet N?
package main

import (
	"fmt"
	"log"

	"hoyan"
)

func main() {
	net := hoyan.NewNetwork()
	net.AddRouter(hoyan.Router{Name: "A", AS: 100, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "B", AS: 200, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "C", AS: 300, Vendor: "alpha"})
	net.AddRouter(hoyan.Router{Name: "D", AS: 400, Vendor: "alpha"})
	net.AddLink("A", "C", 10) // Link 1
	net.AddLink("A", "B", 10) // Link 2
	net.AddLink("B", "C", 10) // Link 3
	net.AddLink("C", "D", 10) // Link 4

	net.SetConfig("A", `hostname A
router bgp 100
 network 10.0.0.0/8
 neighbor B remote-as 200
 neighbor C remote-as 300`)
	net.SetConfig("B", `hostname B
router bgp 200
 neighbor A remote-as 100
 neighbor C remote-as 300`)
	net.SetConfig("C", `hostname C
router bgp 300
 neighbor A remote-as 100
 neighbor B remote-as 200
 neighbor D remote-as 400`)
	net.SetConfig("D", `hostname D
router bgp 400
 neighbor C remote-as 300`)

	v, err := net.Verifier(hoyan.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}

	for _, router := range []string{"B", "C", "D"} {
		rep, err := v.RouteReach("10.0.0.0/8", router)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("route to 10.0.0.0/8 at %s: reachable=%v", router, rep.Reachable)
		if rep.MinFailures > 0 {
			fmt.Printf(", breaks with %d failure(s) %v", rep.MinFailures, rep.Witness)
		}
		fmt.Println()
	}

	pkt, err := v.PacketReach("10.0.0.0/8", "D")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packets D -> 10.0.0.0/8 gateway: reachable=%v, min failures to break=%d\n",
		pkt.Reachable, pkt.MinFailures)

	st, _ := v.Stats("10.0.0.0/8")
	fmt.Printf("simulation explored %d branches (%d pruned as impossible, %d beyond k)\n",
		st.Branches, st.DroppedImpossible, st.DroppedOverK)
}
