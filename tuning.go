package hoyan

import (
	"fmt"

	"hoyan/internal/behavior"
	"hoyan/internal/core"
	"hoyan/internal/netaddr"
	"hoyan/internal/tuner"
)

// Tuner wraps the behavior-model tuner (§6): it compares the verifier's
// computed routes against a ground-truth network and patches the vendor
// behavior registry until they agree.
//
// In production the ground truth is the live WAN's RIB/BMP feeds; here it
// is an emulated network running the vendors' true behaviors (see
// DESIGN.md's substitution table).
type Tuner struct {
	v        *tuner.Validator
	prefixes []netaddr.Prefix
}

// NewTuner builds a tuner for the network, starting from the given model
// registry (typically NaiveProfiles()). The registry is patched in place
// as VSBs are discovered.
func (n *Network) NewTuner(reg *behavior.Registry) (*Tuner, error) {
	if len(n.errs) > 0 {
		return nil, n.errs[0]
	}
	v, err := tuner.New(n.net, n.snap, reg, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	m, err := core.Assemble(n.net, n.snap, behavior.TrueProfiles())
	if err != nil {
		return nil, err
	}
	// Coverage selection (§6): a moderate prefix set covering most
	// configuration blocks.
	target := len(m.AnnouncedPrefixes())
	if target > 16 {
		target = 16
	}
	prefixes, err := tuner.CoveragePrefixes(m, core.DefaultOptions(), target)
	if err != nil {
		return nil, err
	}
	return &Tuner{v: v, prefixes: prefixes}, nil
}

// Mismatches validates the coverage prefixes and returns human-readable
// localized root causes.
func (t *Tuner) Mismatches() ([]string, error) {
	var out []string
	for _, p := range t.prefixes {
		ms, err := t.v.ValidatePrefix(p)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			out = append(out, m.String())
		}
	}
	return out, nil
}

// Run tunes until the model matches the ground truth, returning the
// applied patches.
func (t *Tuner) Run(maxRounds int) ([]string, error) {
	patches, err := t.v.Tune(t.prefixes, maxRounds)
	var out []string
	for _, p := range patches {
		out = append(out, p.String())
	}
	return out, err
}

// Accuracy returns the per-prefix verification accuracy of the current
// model (Figure 14's metric).
func (t *Tuner) Accuracy() (map[string]float64, error) {
	acc, err := t.v.Accuracy(t.prefixes)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for p, a := range acc {
		out[p.String()] = a
	}
	return out, nil
}

// CoveragePrefixes reports the prefixes the tuner validates.
func (t *Tuner) CoveragePrefixes() []string {
	var out []string
	for _, p := range t.prefixes {
		out = append(out, p.String())
	}
	return out
}

// String implements fmt.Stringer for diagnostics.
func (t *Tuner) String() string {
	return fmt.Sprintf("tuner over %d coverage prefixes", len(t.prefixes))
}
