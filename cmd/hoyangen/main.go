// Command hoyangen generates synthetic global WANs (the §3.1 structure:
// single-AS iBGP-over-IS-IS backbone, multi-vendor PE/core/MAN roles,
// external eBGP gateways) and writes them as a network directory the hoyan
// CLI consumes. It can also inject the §7 misconfiguration classes for
// testing the verifier.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hoyan/internal/gen"
)

func main() {
	preset := flag.String("preset", "small", "small | medium | full | xl")
	seed := flag.Int64("seed", 0, "override the preset seed")
	out := flag.String("out", "", "output directory")
	fault := flag.String("fault", "", "inject a fault: static-pref-flip | racing | ip-conflict | role-drift | acl-block")
	faultSeed := flag.Int64("fault-seed", 7, "fault placement seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "hoyangen: missing -out")
		os.Exit(2)
	}
	var params gen.Params
	switch *preset {
	case "small":
		params = gen.Small()
	case "medium":
		params = gen.Medium()
	case "full":
		params = gen.Full()
	case "xl":
		params = gen.XL()
	default:
		fmt.Fprintf(os.Stderr, "hoyangen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *seed != 0 {
		params.Seed = *seed
	}
	w, err := gen.Generate(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyangen:", err)
		os.Exit(1)
	}
	snap := w.Snap
	if *fault != "" {
		rng := rand.New(rand.NewSource(*faultSeed))
		var f gen.Fault
		switch gen.FaultKind(*fault) {
		case gen.FaultStaticPref:
			f = w.InjectStaticPref(rng)
		case gen.FaultRacing:
			f = w.InjectRacing(rng)
		case gen.FaultIPConflict:
			f = w.InjectIPConflict(rng)
		case gen.FaultRoleDrift:
			f = w.InjectRoleDrift(rng)
		case gen.FaultACLBlock:
			f = w.InjectACLBlock(rng)
		default:
			fmt.Fprintf(os.Stderr, "hoyangen: unknown fault %q\n", *fault)
			os.Exit(2)
		}
		snap, err = w.Snap.Apply(f.Updates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hoyangen:", err)
			os.Exit(1)
		}
		fmt.Println("injected:", f.Description)
	}
	if err := gen.WriteDir(*out, w.Net, snap); err != nil {
		fmt.Fprintln(os.Stderr, "hoyangen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d routers, %d links, %d prefixes\n",
		*out, w.Net.NumNodes(), w.Net.NumLinks(), len(w.Prefixes()))
}
