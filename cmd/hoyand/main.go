// Command hoyand serves the verifier as an HTTP/JSON API (the Figure 2
// frontend operators query) and, optionally, the emulated production
// network's collection plane (ext-RIB pulls and BMP-style update logs)
// over a TCP line protocol.
//
//	hoyand -dir /path/to/wan -http :8080 [-collector :8081] [-k 3]
//
// Endpoints: GET /v1/routers /v1/prefixes /v1/route /v1/packet
// /v1/equivalence /v1/racing — see internal/httpapi.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"hoyan/internal/collector"
	"hoyan/internal/core"
	"hoyan/internal/device"
	"hoyan/internal/gen"
	"hoyan/internal/httpapi"
)

func main() {
	dir := flag.String("dir", "", "network directory (topology.txt + *.cfg)")
	httpAddr := flag.String("http", ":8080", "HTTP API listen address")
	collAddr := flag.String("collector", "", "optional collector (ext-RIB/BMP) listen address")
	k := flag.Int("k", 3, "failure budget")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "hoyand: missing -dir")
		os.Exit(2)
	}
	topoNet, snap, err := gen.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyand:", err)
		os.Exit(1)
	}

	if *collAddr != "" {
		oracle, err := device.NewOracle(topoNet, snap, core.DefaultOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, "hoyand:", err)
			os.Exit(1)
		}
		ln, err := net.Listen("tcp", *collAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hoyand:", err)
			os.Exit(1)
		}
		srv := collector.NewServer(oracle)
		go func() {
			if err := srv.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, "hoyand: collector:", err)
			}
		}()
		fmt.Printf("collector listening on %s\n", ln.Addr())
	}

	svc, err := httpapi.New(topoNet, snap, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyand:", err)
		os.Exit(1)
	}
	fmt.Printf("verifier API listening on %s (%d routers, %d links, k=%d)\n",
		*httpAddr, topoNet.NumNodes(), topoNet.NumLinks(), *k)
	if err := http.ListenAndServe(*httpAddr, svc.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "hoyand:", err)
		os.Exit(1)
	}
}
