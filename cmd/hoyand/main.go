// Command hoyand serves the verifier as an HTTP/JSON API (the Figure 2
// frontend operators query) and, optionally, the emulated production
// network's collection plane (ext-RIB pulls and BMP-style update logs)
// over a TCP line protocol.
//
//	hoyand -dir /path/to/wan -http :8080 [-collector :8081] [-k 3]
//
// Endpoints: GET /v1/routers /v1/prefixes /v1/route /v1/packet
// /v1/equivalence /v1/racing /v1/classes /v1/query /v1/snapshots,
// POST /v1/resweep (incremental whole-network re-verification),
// POST /v1/snapshots[/activate] (query-plane snapshot registry) — see
// internal/httpapi. -store publishes a saved sweep's results to the
// query plane at boot so /v1/query answers without a warm-up sweep.
//
// Both planes shut down gracefully on SIGINT/SIGTERM: in-flight HTTP
// requests get a drain window and collector connections are unblocked.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"hoyan"
	"hoyan/internal/collector"
	"hoyan/internal/core"
	"hoyan/internal/device"
	"hoyan/internal/gen"
	"hoyan/internal/httpapi"
)

func main() {
	dir := flag.String("dir", "", "network directory (topology.txt + *.cfg)")
	httpAddr := flag.String("http", ":8080", "HTTP API listen address")
	collAddr := flag.String("collector", "", "optional collector (ext-RIB/BMP) listen address")
	k := flag.Int("k", 3, "failure budget")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "drop collector connections idle this long (0 = never)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain window for in-flight requests")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent sweep sessions (0 = default 2); saturation answers 429 + Retry-After")
	maxJobs := flag.Int("max-session-jobs", 0, "per-session queued-job bound for sweeps (0 = unlimited)")
	storePath := flag.String("store", "", "result store to compile and publish to the query plane at boot (/v1/query serves immediately)")
	cpuprofile := flag.String("cpuprofile", "", "profile CPU for the server's lifetime, written on shutdown")
	memprofile := flag.String("memprofile", "", "write a heap profile on shutdown")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "hoyand: missing -dir")
		os.Exit(2)
	}
	topoNet, snap, err := gen.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyand:", err)
		os.Exit(1)
	}

	var coll *collector.Server
	if *collAddr != "" {
		oracle, err := device.NewOracle(topoNet, snap, core.DefaultOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, "hoyand:", err)
			os.Exit(1)
		}
		ln, err := net.Listen("tcp", *collAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hoyand:", err)
			os.Exit(1)
		}
		coll = collector.NewServer(oracle)
		coll.IdleTimeout = *idle
		go func() {
			if err := coll.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, "hoyand: collector:", err)
			}
		}()
		fmt.Printf("collector listening on %s\n", ln.Addr())
	}

	svc, err := httpapi.New(topoNet, snap, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyand:", err)
		os.Exit(1)
	}
	if *maxSessions > 0 || *maxJobs > 0 {
		svc.SetSessionLimits(*maxSessions, *maxJobs)
	}
	if *storePath != "" {
		st, err := hoyan.LoadResultStore(*storePath)
		if err != nil {
			var ce *hoyan.CorruptStoreError
			if !(errors.As(err, &ce) && ce.Usable) {
				fmt.Fprintln(os.Stderr, "hoyand:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "hoyand: %v (quarantined classes dropped from the snapshot)\n", err)
		}
		id, err := svc.PublishStore(st)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hoyand: compiling store:", err)
			os.Exit(1)
		}
		fmt.Printf("query plane serving snapshot %s from %s\n", id, *storePath)
	}
	srv := &http.Server{
		Addr:              *httpAddr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Profiles cover the serving lifetime and flush on any exit path:
	// graceful shutdown returns through the deferred call, the serve-error
	// path flushes explicitly before os.Exit.
	finishProfiles := startProfiles(*cpuprofile, *memprofile)
	defer finishProfiles()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("hoyand: %v: shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if coll != nil {
			coll.Close()
		}
		// Orderly drain: refuse new sweep sessions (503) and let running
		// ones finish inside the drain window, then stop the listener.
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hoyand: drain timed out with sweeps still running:", err)
		}
		srv.Shutdown(ctx)
	}()

	classes := svc.Classes()
	nprefix := 0
	for _, c := range classes {
		nprefix += len(c.Members)
	}
	fmt.Printf("verifier API listening on %s (%d routers, %d links, k=%d, %d prefixes in %d behavior classes)\n",
		*httpAddr, topoNet.NumNodes(), topoNet.NumLinks(), *k, nprefix, len(classes))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hoyand:", err)
		finishProfiles()
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling (when requested) and returns an
// idempotent flush that stops it and writes the heap profile.
func startProfiles(cpu, mem string) func() {
	stopCPU := func() {}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hoyand:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hoyand:", err)
			os.Exit(1)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			stopCPU()
			if mem == "" {
				return
			}
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hoyand:", err)
				return
			}
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hoyand:", err)
			}
			f.Close()
		})
	}
}
