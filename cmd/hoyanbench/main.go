// Command hoyanbench regenerates the paper's evaluation tables and figures
// (§8, Appendices E/F) on the synthetic WAN presets and prints them as
// text. See EXPERIMENTS.md for the mapping to the paper and the expected
// shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hoyan/internal/bench"
	"hoyan/internal/gen"
)

func main() {
	exp := flag.String("exp", "all", "table1 | table2 | table3 | table4 | table5 | fig7 | fig8-13 | fig14 | fig15-16 | appf | ablations | all")
	budget := flag.Duration("budget", 60*time.Second, "per-cell budget for baseline comparisons")
	months := flag.Int("months", 24, "campaign months for fig7")
	limit := flag.Int("limit", 24, "prefix sample size for full-WAN experiments (0 = all)")
	flag.Parse()

	type experiment struct {
		name string
		run  func() (bench.Table, error)
	}
	experiments := []experiment{
		{"table1", bench.Table1Properties},
		{"table2", bench.Table2VSBs},
		{"table3", func() (bench.Table, error) { return bench.Table3FullWAN(gen.Full(), *limit) }},
		{"table4", func() (bench.Table, error) {
			return bench.TableComparison("Table 4 — small subnet (20 routers)", gen.Small(), []int{0, 1, 2, 3}, 2, *budget)
		}},
		{"table5", func() (bench.Table, error) {
			return bench.TableComparison("Table 5 — medium subnet (80 routers)", gen.Medium(), []int{0, 1, 2, 3}, 2, *budget)
		}},
		{"fig7", func() (bench.Table, error) { return bench.Fig7Campaign(gen.Small(), *months) }},
		{"fig8-13", func() (bench.Table, error) { return bench.Fig8to13(gen.Full(), *limit) }},
		{"fig14", func() (bench.Table, error) { return bench.Fig14Accuracy(gen.Small()) }},
		{"fig15-16", func() (bench.Table, error) { return bench.Fig15and16Tuner(gen.Small()) }},
		{"appf", bench.AppendixFFormulas},
		{"ablations", func() (bench.Table, error) { return bench.Ablations(gen.Medium(), *limit) }},
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		start := time.Now()
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hoyanbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s took %s)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "hoyanbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
