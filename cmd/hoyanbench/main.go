// Command hoyanbench regenerates the paper's evaluation tables and figures
// (§8, Appendices E/F) on the synthetic WAN presets and prints them as
// text. See EXPERIMENTS.md for the mapping to the paper and the expected
// shapes.
//
// With -perf LABEL it instead measures the engine's performance
// trajectory — the Figure 8 per-prefix simulation microbenchmark plus
// medium- and full-WAN sweep wall-clock (classed by default; -no-classes
// for the per-prefix baseline) — and records the snapshot under LABEL in
// a JSON file (default BENCH_PR3.json), merging with whatever labels are
// already there. Committing the file after a perf PR keeps a before/after
// record next to the code.
//
// `-exp incremental` measures incremental re-verification: a baseline
// sweep is captured, one policy change is applied, and the cold re-sweep
// is timed against the baseline-diffed incremental one. Metrics land in
// BENCH_PR4.json (-incr-out) as the resweep_full / resweep_incremental
// groups; -incr-preset/-incr-iters size the run.
//
// `-exp recovery` measures coordinator crash recovery: a journaled sweep
// session is killed once half its classes are durable, resumed from the
// journal, and the resume wall-clock (replay + re-dispatch of the
// unfinished half) is compared against a cold sweep. Metrics land in
// BENCH_PR6.json (-rec-out) as the recovery_cold / recovery_resumed
// groups; -rec-preset/-rec-iters size the run.
//
// `-exp modular` measures modular per-region verification: the same WAN
// is swept monolithically and region-by-region (interface summaries,
// Options.Modular), with wall-clock and peak-memory tracking for both,
// after verifying the two reports agree verdict for verdict. Metrics
// land in BENCH_PR8.json (-mod-out) as the sweep_monolithic /
// sweep_modular groups; -mod-preset/-mod-k size the run ("xl" is the
// O(1000)-router paper-scale WAN where the working-set gap is the
// story).
//
// `-exp vet` measures the static configuration-analysis plane: one vet
// pass (all analyzers, min-of-3) against the cold classed sweep it
// front-runs on the same preset. The sweep side simulates a sample of
// behavior classes and extrapolates linearly — flagged as such in the
// snapshot — because a full cold sweep of the xl preset would dwarf the
// experiment. Metrics land in BENCH_PR10.json (-vet-out) as the
// vet_static / vet_cold_sweep / vet_speedup groups;
// -vet-preset/-vet-k/-vet-sample size the run.
//
// `-exp query` measures the query plane: one baseline sweep is captured
// and compiled (internal/qc), then seeded concurrent clients fire a
// reach/minfail/impact mix at GET /v1/query over HTTP. Metrics — the
// one-time sweep+compile cost, the compiled single-condition evaluation
// microbenchmark, and throughput with p50/p99 latency — land in
// BENCH_PR7.json (-query-out) under query-<preset>;
// -query-preset/-query-clients/-query-duration/-query-seed size the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"hoyan"
	"hoyan/internal/behavior"
	"hoyan/internal/bench"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/gen"
)

func main() {
	exp := flag.String("exp", "all", "table1 | table2 | table3 | table4 | table5 | fig7 | fig8-13 | fig14 | fig15-16 | appf | ablations | classes | incremental | recovery | query | modular | vet | all")
	budget := flag.Duration("budget", 60*time.Second, "per-cell budget for baseline comparisons")
	months := flag.Int("months", 24, "campaign months for fig7")
	limit := flag.Int("limit", 24, "prefix sample size for full-WAN experiments (0 = all)")
	perf := flag.String("perf", "", "record a perf-trajectory snapshot under this label and exit")
	perfout := flag.String("perfout", "BENCH_PR3.json", "perf-trajectory JSON file to merge the snapshot into")
	workers := flag.Int("workers", 8, "sweep workers for -perf")
	noClasses := flag.Bool("no-classes", false, "-perf: sweep every prefix instead of one representative per behavior class")
	auditSample := flag.Float64("audit-sample", 0, "-perf: fully simulate this fraction of non-representative class members and diff against replicated results")
	incrPreset := flag.String("incr-preset", "full", "incremental experiment: small | medium | full")
	incrIters := flag.Int("incr-iters", 1, "incremental experiment: repetitions per measurement (min-of-N)")
	incrOut := flag.String("incr-out", "BENCH_PR4.json", "incremental experiment: JSON snapshot to merge the metrics into (empty = don't write)")
	recPreset := flag.String("rec-preset", "medium", "recovery experiment: small | medium | full")
	recIters := flag.Int("rec-iters", 1, "recovery experiment: repetitions per measurement (min-of-N)")
	recOut := flag.String("rec-out", "BENCH_PR6.json", "recovery experiment: JSON snapshot to merge the metrics into (empty = don't write)")
	queryPreset := flag.String("query-preset", "full", "query experiment: small | medium | full")
	queryClients := flag.Int("query-clients", 8, "query experiment: concurrent load-generator clients")
	queryDuration := flag.Duration("query-duration", 10*time.Second, "query experiment: load-test length")
	querySeed := flag.Int64("query-seed", 1, "query experiment: request-mix seed")
	queryOut := flag.String("query-out", "BENCH_PR7.json", "query experiment: JSON snapshot to merge the metrics into (empty = don't write)")
	modPreset := flag.String("mod-preset", "full", "modular experiment: small | medium | full | xl")
	modK := flag.Int("mod-k", 1, "modular experiment: failure budget")
	modOut := flag.String("mod-out", "BENCH_PR8.json", "modular experiment: JSON snapshot to merge the metrics into (empty = don't write)")
	vetPreset := flag.String("vet-preset", "xl", "vet experiment: small | medium | full | xl")
	vetK := flag.Int("vet-k", 3, "vet experiment: failure budget")
	vetSample := flag.Int("vet-sample", 6, "vet experiment: cold-sweep classes to actually simulate before extrapolating (0 = all)")
	vetOut := flag.String("vet-out", "BENCH_PR10.json", "vet experiment: JSON snapshot to merge the metrics into (empty = don't write)")
	flag.Parse()

	if *perf != "" {
		if err := runPerf(*perf, *perfout, *workers, *noClasses, *auditSample); err != nil {
			fmt.Fprintln(os.Stderr, "hoyanbench:", err)
			os.Exit(1)
		}
		return
	}

	type experiment struct {
		name string
		run  func() (bench.Table, error)
	}
	experiments := []experiment{
		{"table1", bench.Table1Properties},
		{"table2", bench.Table2VSBs},
		{"table3", func() (bench.Table, error) { return bench.Table3FullWAN(gen.Full(), *limit) }},
		{"table4", func() (bench.Table, error) {
			return bench.TableComparison("Table 4 — small subnet (20 routers)", gen.Small(), []int{0, 1, 2, 3}, 2, *budget)
		}},
		{"table5", func() (bench.Table, error) {
			return bench.TableComparison("Table 5 — medium subnet (80 routers)", gen.Medium(), []int{0, 1, 2, 3}, 2, *budget)
		}},
		{"fig7", func() (bench.Table, error) { return bench.Fig7Campaign(gen.Small(), *months) }},
		{"fig8-13", func() (bench.Table, error) { return bench.Fig8to13(gen.Full(), *limit) }},
		{"fig14", func() (bench.Table, error) { return bench.Fig14Accuracy(gen.Small()) }},
		{"fig15-16", func() (bench.Table, error) { return bench.Fig15and16Tuner(gen.Small()) }},
		{"appf", bench.AppendixFFormulas},
		{"ablations", func() (bench.Table, error) { return bench.Ablations(gen.Medium(), *limit) }},
		{"classes", bench.ClassStats},
		{"incremental", func() (bench.Table, error) {
			params, err := presetParams(*incrPreset)
			if err != nil {
				return bench.Table{}, err
			}
			tr := bench.TrackPeak()
			t, m, err := bench.IncrementalSweep(params, 3, *workers, *incrIters)
			peak := tr.Stop()
			if err != nil {
				return bench.Table{}, err
			}
			if *incrOut != "" {
				if err := writeIncrementalSnapshot(*incrOut, *incrPreset, m, peak); err != nil {
					return bench.Table{}, err
				}
				fmt.Printf("recorded resweep metrics in %s\n", *incrOut)
			}
			return t, nil
		}},
		{"recovery", func() (bench.Table, error) {
			params, err := presetParams(*recPreset)
			if err != nil {
				return bench.Table{}, err
			}
			tr := bench.TrackPeak()
			t, m, err := bench.RecoverySweep(params, 3, 2, *recIters)
			peak := tr.Stop()
			if err != nil {
				return bench.Table{}, err
			}
			if *recOut != "" {
				if err := writeRecoverySnapshot(*recOut, *recPreset, m, peak); err != nil {
					return bench.Table{}, err
				}
				fmt.Printf("recorded recovery metrics in %s\n", *recOut)
			}
			return t, nil
		}},
		{"query", func() (bench.Table, error) {
			params, err := presetParams(*queryPreset)
			if err != nil {
				return bench.Table{}, err
			}
			tr := bench.TrackPeak()
			t, m, err := bench.QueryLoad(params, 3, *workers, *queryClients, *queryDuration, *querySeed)
			peak := tr.Stop()
			if err != nil {
				return bench.Table{}, err
			}
			if *queryOut != "" {
				if err := writeQuerySnapshot(*queryOut, *queryPreset, m, peak); err != nil {
					return bench.Table{}, err
				}
				fmt.Printf("recorded query-plane metrics in %s\n", *queryOut)
			}
			return t, nil
		}},
		{"vet", func() (bench.Table, error) {
			params, err := presetParams(*vetPreset)
			if err != nil {
				return bench.Table{}, err
			}
			t, m, err := bench.VetStatic(params, *vetK, *vetSample)
			if err != nil {
				return bench.Table{}, err
			}
			if *vetOut != "" {
				if err := writeVetSnapshot(*vetOut, *vetPreset, m); err != nil {
					return bench.Table{}, err
				}
				fmt.Printf("recorded static-vet metrics in %s\n", *vetOut)
			}
			return t, nil
		}},
		{"modular", func() (bench.Table, error) {
			params, err := presetParams(*modPreset)
			if err != nil {
				return bench.Table{}, err
			}
			t, m, err := bench.ModularSweep(params, *modK, *workers)
			if err != nil {
				return bench.Table{}, err
			}
			if *modOut != "" {
				if err := writeModularSnapshot(*modOut, *modPreset, m); err != nil {
					return bench.Table{}, err
				}
				fmt.Printf("recorded modular-verification metrics in %s\n", *modOut)
			}
			return t, nil
		}},
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		start := time.Now()
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hoyanbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s took %s)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "hoyanbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runPerf measures the perf-trajectory snapshot and merges it into the
// JSON file under label.
func runPerf(label, out string, workers int, noClasses bool, auditSample float64) error {
	snap := map[string]any{
		"date":       time.Now().UTC().Format(time.RFC3339),
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"no_classes": noClasses,
	}

	// Figure 8 microbenchmark: one per-prefix simulation on the full WAN
	// at the default failure budget, allocation-counted.
	w, err := gen.Generate(gen.Full())
	if err != nil {
		return err
	}
	m, err := core.Assemble(w.Net, w.Snap, behavior.TrueProfiles())
	if err != nil {
		return err
	}
	sim := core.NewSimulator(m, core.DefaultOptions())
	p := w.Prefixes()[0]
	// Warm up once so the benchmark reports the steady state (the first
	// run on a fresh simulator pays the one-time IGP propagation) — the
	// same regime `go test -bench` reaches by amortizing over b.N.
	if _, err := sim.Run(p); err != nil {
		return err
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(p); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}
	snap["fig8_simulate"] = map[string]any{
		"ns_per_op":     r.NsPerOp(),
		"bytes_per_op":  r.AllocedBytesPerOp(),
		"allocs_per_op": r.AllocsPerOp(),
		"iterations":    r.N,
	}
	fmt.Printf("fig8 simulate: %s\n", r.String()+"\t"+r.MemString())

	// Whole-network sweep wall-clock through the public API, the paper's
	// §8 deployment mode.
	for _, preset := range []struct {
		name   string
		params gen.Params
	}{{"medium", gen.Medium()}, {"full", gen.Full()}} {
		pw, err := gen.Generate(preset.params)
		if err != nil {
			return err
		}
		tr := bench.TrackPeak()
		rep, err := sweepNetwork(pw).Sweep(hoyan.Options{K: 3, NoClasses: noClasses, AuditSample: auditSample}, workers)
		peak := tr.Stop()
		if err != nil {
			return err
		}
		snap["sweep_"+preset.name] = map[string]any{
			"seconds":         rep.Duration.Seconds(),
			"prefixes":        len(rep.Prefixes),
			"classes":         rep.Classes,
			"audited":         rep.Audited,
			"workers":         rep.Workers,
			"k":               3,
			"peak_heap_bytes": peak.HeapAllocBytes,
			"peak_rss_bytes":  peak.RSSBytes,
		}
		fmt.Printf("sweep %s: %s\n", preset.name, rep)
	}

	doc := map[string]any{}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	}
	doc[label] = snap
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %q in %s\n", label, out)
	return nil
}

// presetParams maps a preset name to its generator parameters.
func presetParams(name string) (gen.Params, error) {
	switch name {
	case "small":
		return gen.Small(), nil
	case "medium":
		return gen.Medium(), nil
	case "full":
		return gen.Full(), nil
	case "xl":
		return gen.XL(), nil
	}
	return gen.Params{}, fmt.Errorf("unknown preset %q", name)
}

// writeIncrementalSnapshot merges the incremental-re-verification
// metrics into the BENCH_PR4-style JSON file: one label per preset,
// with resweep_full (cold re-sweep of the perturbed WAN) and
// resweep_incremental (same network, baseline-diffed sweep) groups.
func writeIncrementalSnapshot(out, preset string, m *bench.IncrementalMetrics, peak bench.PeakMem) error {
	snap := map[string]any{
		"date":            time.Now().UTC().Format(time.RFC3339),
		"go":              runtime.Version(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"peak_heap_bytes": peak.HeapAllocBytes,
		"peak_rss_bytes":  peak.RSSBytes,
		"perturbation":    m.Perturbation,
		"resweep_full": map[string]any{
			"seconds":  m.ColdSeconds,
			"prefixes": m.Prefixes,
			"classes":  m.Classes,
			"workers":  m.Workers,
			"k":        m.K,
		},
		"resweep_incremental": map[string]any{
			"seconds":          m.IncrementalSeconds,
			"prefixes":         m.Prefixes,
			"classes":          m.Classes,
			"classes_dirty":    m.ClassesDirty,
			"classes_replayed": m.ClassesReplayed,
			"replays_audited":  m.ReplaysAudited,
			"speedup_vs_cold":  m.Speedup,
			"workers":          m.Workers,
			"k":                m.K,
		},
	}
	doc := map[string]any{}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	}
	doc["resweep-"+preset] = snap
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(enc, '\n'), 0o644)
}

// writeRecoverySnapshot merges the crash-recovery metrics into the
// BENCH_PR6-style JSON file: one label per preset, with recovery_cold
// (uninterrupted classed sweep) and recovery_resumed (journal replay +
// re-dispatch after a mid-sweep coordinator kill) groups.
func writeRecoverySnapshot(out, preset string, m *bench.RecoveryMetrics, peak bench.PeakMem) error {
	snap := map[string]any{
		"date":            time.Now().UTC().Format(time.RFC3339),
		"go":              runtime.Version(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"peak_heap_bytes": peak.HeapAllocBytes,
		"peak_rss_bytes":  peak.RSSBytes,
		"recovery_cold": map[string]any{
			"seconds": m.ColdSeconds,
			"classes": m.Classes,
			"workers": m.Workers,
			"k":       m.K,
		},
		"recovery_resumed": map[string]any{
			"seconds":              m.ResumedSeconds,
			"classes":              m.Classes,
			"kill_point":           m.KillPoint,
			"classes_replayed":     m.Replayed,
			"classes_redispatched": m.Redispatched,
			"saved_vs_cold":        m.SavedFraction,
			"workers":              m.Workers,
			"k":                    m.K,
		},
	}
	doc := map[string]any{}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	}
	doc["recovery-"+preset] = snap
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(enc, '\n'), 0o644)
}

// sweepNetwork lifts a generated WAN into the public API.
func sweepNetwork(w *gen.WAN) *hoyan.Network {
	n := hoyan.NewNetwork()
	for _, node := range w.Net.Nodes() {
		n.AddRouter(hoyan.Router{Name: node.Name, AS: node.AS, Vendor: node.Vendor,
			Region: node.Region, Group: node.Group})
	}
	for _, l := range w.Net.Links() {
		n.AddLink(w.Net.Node(l.A).Name, w.Net.Node(l.B).Name, l.Weight)
	}
	for name, cfg := range w.Snap {
		n.SetConfig(name, config.Write(cfg))
	}
	return n
}

// writeQuerySnapshot merges the query-plane metrics into the
// BENCH_PR7-style JSON file: one label per preset, with the one-time
// costs (sweep + compile), the compiled single-condition evaluation
// microbenchmark, and the HTTP load test's throughput and latency
// percentiles.
func writeQuerySnapshot(out, preset string, m *bench.QueryMetrics, peak bench.PeakMem) error {
	snap := map[string]any{
		"date":            time.Now().UTC().Format(time.RFC3339),
		"go":              runtime.Version(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"peak_heap_bytes": peak.HeapAllocBytes,
		"peak_rss_bytes":  peak.RSSBytes,
		"classes":         m.Classes,
		"prefixes":   m.Prefixes,
		"programs":   m.Programs,
		"k":          m.K,
		"query_compile": map[string]any{
			"sweep_seconds": m.SweepSeconds,
			"compile_ms":    m.CompileMS,
			"workers":       m.Workers,
		},
		"query_eval": map[string]any{
			"ns_per_op":       m.EvalNanos,
			"allocs_per_op":   m.EvalAllocs,
			"instrs":          m.EvalInstrs,
			"decisions":       m.EvalDecisions,
			"worst_ns_per_op": m.EvalMaxNanos,
			"worst_instrs":    m.EvalMaxInstrs,
			"worst_decisions": m.EvalMaxDecisions,
		},
		"query_load": map[string]any{
			"clients":          m.Clients,
			"duration_seconds": m.DurationSeconds,
			"queries":          m.Queries,
			"errors":           m.Errors,
			"queries_per_sec":  m.QPS,
			"p50_us":           m.P50Micros,
			"p99_us":           m.P99Micros,
		},
	}
	doc := map[string]any{}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	}
	doc["query-"+preset] = snap
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(enc, '\n'), 0o644)
}

// writeVetSnapshot merges the static-analysis metrics into the
// BENCH_PR10-style JSON file: one label per preset, with vet_static
// (the milliseconds-scale analysis pass), vet_cold_sweep (the classed
// sweep cost it front-runs — extrapolated=1 when sampled, the honesty
// flag), and vet_speedup groups.
func writeVetSnapshot(out, preset string, m *bench.VetMetrics) error {
	extrapolated := 0
	if m.Extrapolated {
		extrapolated = 1
	}
	snap := map[string]any{
		"date":       time.Now().UTC().Format(time.RFC3339),
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"routers":    m.Routers,
		"prefixes":   m.Prefixes,
		"classes":    m.Classes,
		"k":          m.K,
		"vet_static": map[string]any{
			"seconds":            m.VetSeconds,
			"assemble_seconds":   m.AssembleSeconds,
			"us_per_class":       1e6 * m.VetSeconds / float64(m.Classes),
			"findings":           m.Findings,
			"advisories":         m.Advisories,
			"predicted_refusals": m.PredictedRefusals,
		},
		"vet_cold_sweep": map[string]any{
			"seconds":         m.ColdSeconds,
			"sampled_classes": m.SampledClasses,
			"extrapolated":    extrapolated,
		},
		"vet_speedup": map[string]any{
			"speedup_vs_cold_sweep": m.Speedup,
		},
	}
	doc := map[string]any{}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	}
	doc["vet-"+preset] = snap
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(enc, '\n'), 0o644)
}

// writeModularSnapshot merges the modular-verification metrics into the
// BENCH_PR8-style JSON file: one label per preset, with sweep_monolithic
// and sweep_modular groups measured on the identical WAN (reports
// verified identical before recording). Peak heap is the sampled
// live-heap high-water of each sweep's own window; peak RSS is the
// kernel's process-lifetime VmHWM, so only the first-run (modular)
// reading is uninflated by the other mode.
func writeModularSnapshot(out, preset string, m *bench.ModularMetrics) error {
	snap := map[string]any{
		"date":       time.Now().UTC().Format(time.RFC3339),
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"routers":    m.Routers,
		"prefixes":   m.Prefixes,
		"classes":    m.Classes,
		"regions":    m.Regions,
		"k":          m.K,
		"workers":    m.Workers,
		"sweep_monolithic": map[string]any{
			"seconds":         m.MonoSeconds,
			"peak_heap_bytes": m.MonoPeakHeap,
			"peak_rss_bytes":  m.MonoRSS,
		},
		"sweep_modular": map[string]any{
			"seconds":           m.ModSeconds,
			"peak_heap_bytes":   m.ModPeakHeap,
			"peak_rss_bytes":    m.ModRSS,
			"passes":            m.Passes,
			"refused":           m.Refused,
			"speedup_vs_mono":   m.SpeedupTime,
			"heap_savings_mono": m.SavingsHeap,
		},
	}
	doc := map[string]any{}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	}
	doc["modular-"+preset] = snap
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(enc, '\n'), 0o644)
}
