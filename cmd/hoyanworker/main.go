// Command hoyanworker serves distributed verification requests for one
// network directory — the worker side of §8's "Hoyan could be run in a
// distributed way". Point any number of these at the same network
// directory and give their addresses to `hoyan sweep -workers`.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"hoyan/internal/dist"
	"hoyan/internal/gen"
)

func main() {
	dir := flag.String("dir", "", "network directory (topology.txt + *.cfg)")
	listen := flag.String("listen", ":8090", "listen address")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "hoyanworker: missing -dir")
		os.Exit(2)
	}
	topoNet, snap, err := gen.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker on %s (%d routers, %d links)\n", ln.Addr(), topoNet.NumNodes(), topoNet.NumLinks())
	w := dist.NewWorker(topoNet, snap)
	if err := w.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
}
