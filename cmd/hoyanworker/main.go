// Command hoyanworker serves distributed verification requests for one
// network directory — the worker side of §8's "Hoyan could be run in a
// distributed way". Point any number of these at the same network
// directory and give their addresses to `hoyan sweep -workers`.
//
// The worker shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, unblocks idle coordinator connections, and lets in-flight
// responses flush.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hoyan/internal/dist"
	"hoyan/internal/gen"
)

func main() {
	dir := flag.String("dir", "", "network directory (topology.txt + *.cfg)")
	listen := flag.String("listen", ":8090", "listen address")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "drop coordinator connections idle this long (0 = never)")
	extraDirs := flag.String("extra-dirs", "", "comma-separated additional network directories to serve (multi-session pools); requests select a model by its hash")
	maxShared := flag.Int("max-shared", 0, "max resident assembled snapshots, the (model, k) LRU size (0 = default)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "hoyanworker: missing -dir")
		os.Exit(2)
	}
	topoNet, snap, err := gen.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker on %s (%d routers, %d links, model %s)\n",
		ln.Addr(), topoNet.NumNodes(), topoNet.NumLinks(), dist.ModelHash(topoNet, snap))
	w := dist.NewWorker(topoNet, snap)
	w.IdleTimeout = *idle
	w.MaxShared = *maxShared
	if *extraDirs != "" {
		for _, d := range strings.Split(*extraDirs, ",") {
			xn, xs, err := gen.LoadDir(d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hoyanworker: extra dir %s: %v\n", d, err)
				os.Exit(1)
			}
			fmt.Printf("  also serving %s as model %s\n", d, w.AddModel(xn, xs))
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("hoyanworker: %v: shutting down\n", sig)
		w.Close()
	}()

	if err := w.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
}
