// Command hoyanworker serves distributed verification requests for one
// network directory — the worker side of §8's "Hoyan could be run in a
// distributed way". Point any number of these at the same network
// directory and give their addresses to `hoyan sweep -workers`.
//
// The worker shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, unblocks idle coordinator connections, and lets in-flight
// responses flush.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hoyan/internal/dist"
	"hoyan/internal/gen"
)

func main() {
	dir := flag.String("dir", "", "network directory (topology.txt + *.cfg)")
	listen := flag.String("listen", ":8090", "listen address")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "drop coordinator connections idle this long (0 = never)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "hoyanworker: missing -dir")
		os.Exit(2)
	}
	topoNet, snap, err := gen.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker on %s (%d routers, %d links)\n", ln.Addr(), topoNet.NumNodes(), topoNet.NumLinks())
	w := dist.NewWorker(topoNet, snap)
	w.IdleTimeout = *idle

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("hoyanworker: %v: shutting down\n", sig)
		w.Close()
	}()

	if err := w.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "hoyanworker:", err)
		os.Exit(1)
	}
}
