// Command hoyanlint runs the hoyan static-analysis suite (internal/lint)
// over package patterns, in the spirit of a go/analysis multichecker:
//
//	hoyanlint ./...
//	hoyanlint -list
//	hoyanlint -only maporder,netdeadline ./...
//
// Diagnostics print as file:line:col: message (analyzer). The exit
// status is 1 when any unsuppressed diagnostic is reported, 2 on driver
// errors. Suppress a reviewed false positive with a trailing or
// preceding comment:
//
//	//lint:allow <analyzer> <reason>
//
// The directive requires a reason; a bare directive suppresses nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hoyan/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("unknown analyzer %q (try -list)", name)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.ListPackages(".", patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	loader := lint.NewLoader()
	if err := loader.IndexModule("."); err != nil {
		fatalf("%v", err)
	}

	findings := 0
	for _, p := range pkgs {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.LoadFiles(p.Dir, p.ImportPath, p.GoFiles)
		if err != nil {
			fatalf("%v", err)
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fatalf("%s: %v", p.ImportPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "hoyanlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hoyanlint: "+format+"\n", args...)
	os.Exit(2)
}
