// Command hoyanlint runs the hoyan static-analysis suite (internal/lint)
// over package patterns, in the spirit of a go/analysis multichecker:
//
//	hoyanlint ./...
//	hoyanlint -list
//	hoyanlint -only maporder,netdeadline ./...
//	hoyanlint -json ./...
//
// Diagnostics print as file:line:col: message (analyzer); -json instead
// emits one machine-readable report on stdout (the same schema family
// as `hoyan vet -json`: a findings count plus a diagnostics list), for
// CI to archive as a stable failure summary. The exit status is 1 when
// any unsuppressed diagnostic is reported, 2 on driver errors. Suppress a reviewed false positive with a trailing or
// preceding comment:
//
//	//lint:allow <analyzer> <reason>
//
// The directive requires a reason; a bare directive suppresses nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hoyan/internal/lint"
)

// lintDiag is one diagnostic of the -json report — the same schema
// family as hoyan vet's, anchored to source positions instead of config
// objects.
type lintDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit one machine-readable report on stdout instead of text lines")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("unknown analyzer %q (try -list)", name)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.ListPackages(".", patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	loader := lint.NewLoader()
	if err := loader.IndexModule("."); err != nil {
		fatalf("%v", err)
	}

	report := []lintDiag{}
	for _, p := range pkgs {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.LoadFiles(p.Dir, p.ImportPath, p.GoFiles)
		if err != nil {
			fatalf("%v", err)
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fatalf("%s: %v", p.ImportPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !*jsonOut {
				fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
			}
			report = append(report, lintDiag{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings    int        `json:"findings"`
			Diagnostics []lintDiag `json:"diagnostics"`
		}{len(report), report}); err != nil {
			fatalf("%v", err)
		}
	}
	if len(report) > 0 {
		fmt.Fprintf(os.Stderr, "hoyanlint: %d finding(s)\n", len(report))
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hoyanlint: "+format+"\n", args...)
	os.Exit(2)
}
