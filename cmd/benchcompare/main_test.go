package main

import (
	"strings"
	"testing"
)

func snap(vals map[string]map[string]float64) map[string]any {
	out := map[string]any{"date": "2026-01-01", "go": "go1.24.0"}
	for group, metrics := range vals {
		g := map[string]any{}
		for k, v := range metrics {
			g[k] = v // float64, as encoding/json would decode
		}
		out[group] = g
	}
	return out
}

func TestDiffSnapshots(t *testing.T) {
	old := snap(map[string]map[string]float64{
		"sweep_full": {"seconds": 300, "prefixes": 160, "workers": 8},
		"fig8":       {"ns_per_op": 1000},
	})
	new := snap(map[string]map[string]float64{
		"sweep_full": {"seconds": 150, "prefixes": 160, "classes": 40},
		"fig8":       {"ns_per_op": 900},
	})
	got := diffSnapshots(old, new)
	for _, want := range []string{
		"sweep_full",
		"seconds        300 -> 150 (-50.0%)",
		"prefixes       160 (unchanged)",
		"classes        (new) -> 40",
		"workers        8 -> (gone)",
		"ns_per_op      1000 -> 900 (-10.0%)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff missing %q:\n%s", want, got)
		}
	}
	// Scalar top-level fields (date, go) must not appear as groups.
	if strings.Contains(got, "date") || strings.Contains(got, "go1.24.0") {
		t.Errorf("scalar fields leaked into diff:\n%s", got)
	}
}

func TestLabelPair(t *testing.T) {
	doc := map[string]any{
		"_methodology": map[string]any{"machine": "x"},
		"after":        map[string]any{},
		"before":       map[string]any{},
	}
	a, b, ok := labelPair(doc)
	if !ok || a != "before" || b != "after" {
		t.Fatalf("labelPair = %q %q %v", a, b, ok)
	}
	doc2 := map[string]any{"pr2": map[string]any{}, "pr3": map[string]any{}}
	a, b, ok = labelPair(doc2)
	if !ok || a != "pr2" || b != "pr3" {
		t.Fatalf("sorted pair = %q %q %v", a, b, ok)
	}
	if _, _, ok := labelPair(map[string]any{"only": map[string]any{}}); ok {
		t.Fatal("single label must not pair")
	}
}

func TestTrim(t *testing.T) {
	if trim(8) != "8" || trim(307.995) != "307.995" {
		t.Fatalf("trim: %q %q", trim(8), trim(307.995))
	}
}
