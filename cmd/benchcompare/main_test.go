package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(vals map[string]map[string]float64) map[string]any {
	out := map[string]any{"date": "2026-01-01", "go": "go1.24.0"}
	for group, metrics := range vals {
		g := map[string]any{}
		for k, v := range metrics {
			g[k] = v // float64, as encoding/json would decode
		}
		out[group] = g
	}
	return out
}

func TestDiffSnapshots(t *testing.T) {
	old := snap(map[string]map[string]float64{
		"sweep_full": {"seconds": 300, "prefixes": 160, "workers": 8},
		"fig8":       {"ns_per_op": 1000},
	})
	new := snap(map[string]map[string]float64{
		"sweep_full": {"seconds": 150, "prefixes": 160, "classes": 40},
		"fig8":       {"ns_per_op": 900},
	})
	got := diffSnapshots(old, new)
	for _, want := range []string{
		"sweep_full",
		"seconds        300 -> 150 (-50.0%)",
		"prefixes       160 (unchanged)",
		"classes        (new) -> 40",
		"workers        8 -> (gone)",
		"ns_per_op      1000 -> 900 (-10.0%)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff missing %q:\n%s", want, got)
		}
	}
	// Scalar top-level fields (date, go) must not appear as groups.
	if strings.Contains(got, "date") || strings.Contains(got, "go1.24.0") {
		t.Errorf("scalar fields leaked into diff:\n%s", got)
	}
}

func TestDirection(t *testing.T) {
	cases := map[string]int{
		// Lower is better: timings, latencies, error counts.
		"seconds": -1, "sweep_seconds": -1, "ns_per_op": -1, "allocs_per_op": -1,
		"compile_ms": -1, "p50_us": -1, "p99_us": -1, "errors": -1,
		// Lower is better: peak-memory high-water marks.
		"peak_heap_bytes": -1, "peak_rss_bytes": -1,
		// Higher is better: throughput, speedups, and savings ratios.
		"queries_per_sec": +1, "qps": +1, "speedup_vs_cold": +1, "saved_seconds_hot": +1,
		"speedup_vs_mono": +1, "heap_savings_mono": +1,
		// Neutral: counts and configuration echoes are never judged.
		"classes": 0, "prefixes": 0, "workers": 0, "clients": 0, "instrs": 0,
	}
	for metric, want := range cases {
		if got := direction(metric); got != want {
			t.Errorf("direction(%q) = %d, want %d", metric, got, want)
		}
	}
}

func TestRegressionCollection(t *testing.T) {
	regressions = nil
	old := snap(map[string]map[string]float64{
		"query_load": {"queries_per_sec": 10000, "p99_us": 100, "clients": 8},
		"query_eval": {"ns_per_op": 500},
	})
	new := snap(map[string]map[string]float64{
		"query_load": {"queries_per_sec": 8000, "p99_us": 150, "clients": 16},
		"query_eval": {"ns_per_op": 400},
	})
	got := diffSnapshots(old, new)
	// qps fell 20%, p99 rose 50%: both regressions. ns_per_op improved and
	// clients is a neutral config echo: neither is recorded.
	want := map[string]float64{"queries_per_sec": 20, "p99_us": 50}
	if len(regressions) != len(want) {
		t.Fatalf("got %d regressions %+v, want %d", len(regressions), regressions, len(want))
	}
	for _, r := range regressions {
		pct, ok := want[r.metric]
		if !ok {
			t.Errorf("unexpected regression recorded for %s.%s", r.group, r.metric)
			continue
		}
		if r.pct < pct-0.01 || r.pct > pct+0.01 {
			t.Errorf("%s regression pct = %.2f, want %.2f", r.metric, r.pct, pct)
		}
		if r.group != "query_load" {
			t.Errorf("%s regression group = %q", r.metric, r.group)
		}
	}
	if !strings.Contains(got, "queries_per_sec 10000 -> 8000 (-20.0%)  <- regressed") {
		t.Errorf("regressed line not marked:\n%s", got)
	}
	if strings.Contains(got, "ns_per_op      500 -> 400 (-20.0%)  <- regressed") {
		t.Errorf("improvement wrongly marked:\n%s", got)
	}
	regressions = nil
}

func TestLabelPair(t *testing.T) {
	doc := map[string]any{
		"_methodology": map[string]any{"machine": "x"},
		"after":        map[string]any{},
		"before":       map[string]any{},
	}
	a, b, ok := labelPair(doc)
	if !ok || a != "before" || b != "after" {
		t.Fatalf("labelPair = %q %q %v", a, b, ok)
	}
	doc2 := map[string]any{"pr2": map[string]any{}, "pr3": map[string]any{}}
	a, b, ok = labelPair(doc2)
	if !ok || a != "pr2" || b != "pr3" {
		t.Fatalf("sorted pair = %q %q %v", a, b, ok)
	}
	if _, _, ok := labelPair(map[string]any{"only": map[string]any{}}); ok {
		t.Fatal("single label must not pair")
	}
}

func TestTrim(t *testing.T) {
	if trim(8) != "8" || trim(307.995) != "307.995" {
		t.Fatalf("trim: %q %q", trim(8), trim(307.995))
	}
}

func TestResweepGroupsDiff(t *testing.T) {
	old := snap(map[string]map[string]float64{
		"resweep_full":        {"seconds": 90, "classes": 40},
		"resweep_incremental": {"seconds": 10, "classes_dirty": 4, "classes_replayed": 36},
	})
	new := snap(map[string]map[string]float64{
		"resweep_full":        {"seconds": 90, "classes": 40},
		"resweep_incremental": {"seconds": 5, "classes_dirty": 2, "classes_replayed": 38, "speedup_vs_cold": 18},
	})
	got := diffSnapshots(old, new)
	for _, want := range []string{
		"resweep_full",
		"resweep_incremental",
		"seconds        10 -> 5 (-50.0%)",
		"classes_dirty  4 -> 2 (-50.0%)",
		"speedup_vs_cold (new) -> 18",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff missing %q:\n%s", want, got)
		}
	}
}

// TestCompareFilesNoSharedLabels pins the cross-snapshot fallback: a
// before/after file and a resweep-* file share no labels, so their
// newest labels are diffed best-effort instead of erroring out.
func TestCompareFilesNoSharedLabels(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_PR3.json")
	newPath := filepath.Join(dir, "BENCH_PR4.json")
	oldDoc := map[string]any{
		"before": snap(map[string]map[string]float64{"sweep_full": {"seconds": 300}}),
		"after":  snap(map[string]map[string]float64{"sweep_full": {"seconds": 90}}),
	}
	newDoc := map[string]any{
		"resweep-full": snap(map[string]map[string]float64{
			"resweep_incremental": {"seconds": 5, "speedup_vs_cold": 18},
		}),
	}
	for path, doc := range map[string]map[string]any{oldPath: oldDoc, newPath: newDoc} {
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := compareFiles(oldPath, newPath); err != nil {
		t.Fatalf("fallback comparison errored: %v", err)
	}
	if got := newestLabel(oldDoc); got != "after" {
		t.Fatalf("newestLabel(before/after) = %q", got)
	}
	if got := newestLabel(newDoc); got != "resweep-full" {
		t.Fatalf("newestLabel(resweep) = %q", got)
	}
}
