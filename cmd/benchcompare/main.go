// Command benchcompare diffs the perf-trajectory snapshots written by
// `hoyanbench -perf` (BENCH_*.json) and prints per-metric deltas.
//
//	benchcompare                 # latest two BENCH_*.json in the CWD
//	benchcompare old.json new.json
//
// With no arguments it globs BENCH_*.json, sorts by name, and compares
// the last two; if only one file exists it compares labels within that
// file (before vs after). Matching labels are diffed group by group:
// numeric metrics get absolute and percentage deltas, with negative
// percentages meaning the metric shrank. The comparison is advisory — CI
// runs it non-fatally so a perf regression is visible without blocking
// the gate (timing on shared runners is too noisy to hard-fail on).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "directory to scan for BENCH_*.json when no files are given")
	failOver := flag.Float64("fail-over", 0,
		"exit nonzero when a directional metric regresses by more than this percent (0 = report only)")
	flag.Parse()

	var err error
	switch flag.NArg() {
	case 0:
		err = compareLatest(*dir)
	case 2:
		err = compareFiles(flag.Arg(0), flag.Arg(1))
	default:
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-fail-over PCT] [old.json new.json]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	if *failOver > 0 {
		bad := false
		for _, r := range regressions {
			if r.pct > *failOver {
				bad = true
				fmt.Fprintf(os.Stderr, "benchcompare: %s.%s regressed %.1f%% (threshold %.1f%%)\n",
					r.group, r.metric, r.pct, *failOver)
			}
		}
		if bad {
			os.Exit(1)
		}
	}
}

// regression is one directional metric that moved the wrong way; pct is
// the magnitude of the move (always positive).
type regression struct {
	group, metric string
	pct           float64
}

// regressions accumulates across every diff the invocation prints; main
// judges them against -fail-over at the end.
var regressions []regression

// direction classifies a metric by name: -1 lower-is-better (timings,
// latencies, error counts), +1 higher-is-better (throughput, speedups),
// 0 neutral (counts and configuration echoes are reported but never
// judged).
func direction(metric string) int {
	switch {
	case strings.Contains(metric, "qps"),
		strings.Contains(metric, "per_sec"),
		strings.HasPrefix(metric, "speedup"),
		strings.HasPrefix(metric, "saved"),
		strings.Contains(metric, "savings"):
		return +1
	case strings.Contains(metric, "seconds"),
		strings.Contains(metric, "_per_op"),
		strings.Contains(metric, "_per_class"),
		strings.HasSuffix(metric, "_ms"),
		strings.HasSuffix(metric, "_us"),
		strings.HasSuffix(metric, "_ns"),
		strings.HasPrefix(metric, "p50"),
		strings.HasPrefix(metric, "p99"),
		strings.HasPrefix(metric, "peak_"),
		metric == "errors":
		return -1
	}
	return 0
}

// compareLatest picks the latest two snapshot files by name (BENCH_PR2 <
// BENCH_PR3 < BENCH_PR10, matching the PR sequence — embedded numbers
// compare numerically, so PR10 sorts after PR9, not before PR2) or falls
// back to within-file label comparison when only one exists.
func compareLatest(dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Slice(files, func(i, j int) bool { return naturalLess(files[i], files[j]) })
	switch len(files) {
	case 0:
		return fmt.Errorf("no BENCH_*.json in %s", dir)
	case 1:
		doc, err := load(files[0])
		if err != nil {
			return err
		}
		a, b, ok := labelPair(doc)
		if !ok {
			return fmt.Errorf("%s: need two labels to compare", files[0])
		}
		fmt.Printf("%s: %q vs %q\n", filepath.Base(files[0]), a, b)
		fmt.Print(diffSnapshots(snapshot(doc, a), snapshot(doc, b)))
		return nil
	default:
		return compareFiles(files[len(files)-2], files[len(files)-1])
	}
}

// naturalLess orders strings with embedded digit runs compared as
// numbers, so BENCH_PR10.json sorts after BENCH_PR9.json.
func naturalLess(a, b string) bool {
	for a != "" && b != "" {
		ad, an := splitDigits(a)
		bd, bn := splitDigits(b)
		if ad != "" && bd != "" {
			if ad != bd {
				// Strip leading zeros so lengths compare magnitudes.
				at := strings.TrimLeft(ad, "0")
				bt := strings.TrimLeft(bd, "0")
				if len(at) != len(bt) {
					return len(at) < len(bt)
				}
				if at != bt {
					return at < bt
				}
				return ad < bd
			}
		} else if a[0] != b[0] {
			return a[0] < b[0]
		}
		if ad == "" {
			an, bn = a[1:], b[1:]
		}
		a, b = an, bn
	}
	return a == "" && b != ""
}

// splitDigits splits a leading digit run off s; run is empty when s does
// not start with a digit.
func splitDigits(s string) (run, rest string) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return s[:i], s[i:]
}

// compareFiles diffs every label the two files share; labels only one
// side has are listed but not diffed.
func compareFiles(oldPath, newPath string) error {
	oldDoc, err := load(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return err
	}
	shared := false
	for _, label := range labels(oldDoc) {
		if _, ok := newDoc[label]; !ok {
			continue
		}
		shared = true
		fmt.Printf("%s vs %s: %q\n", filepath.Base(oldPath), filepath.Base(newPath), label)
		fmt.Print(diffSnapshots(snapshot(oldDoc, label), snapshot(newDoc, label)))
	}
	if !shared {
		// Files that share no labels (BENCH_PR3's before/after vs
		// BENCH_PR4's resweep-* snapshots) still get a best-effort diff of
		// their newest labels; metric groups only one side has print as
		// new/gone rather than being silently dropped.
		a, b := newestLabel(oldDoc), newestLabel(newDoc)
		if a == "" || b == "" {
			return fmt.Errorf("%s and %s share no labels", oldPath, newPath)
		}
		fmt.Printf("%s %q vs %s %q (no shared labels)\n",
			filepath.Base(oldPath), a, filepath.Base(newPath), b)
		fmt.Print(diffSnapshots(snapshot(oldDoc, a), snapshot(newDoc, b)))
	}
	return nil
}

// newestLabel picks a document's most recent snapshot: "after" when the
// before/after convention is used, else the last label in sorted order.
func newestLabel(doc map[string]any) string {
	if _, b, ok := labelPair(doc); ok {
		return b
	}
	ls := labels(doc)
	if len(ls) == 0 {
		return ""
	}
	return ls[len(ls)-1]
}

func load(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := map[string]any{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// labels returns the snapshot labels of a document in sorted order,
// skipping the "_methodology"-style metadata keys.
func labels(doc map[string]any) []string {
	var out []string
	for k, v := range doc {
		if strings.HasPrefix(k, "_") {
			continue
		}
		if _, ok := v.(map[string]any); ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// labelPair picks the (old, new) labels within one file: before/after if
// both exist, else the first two in sorted order.
func labelPair(doc map[string]any) (string, string, bool) {
	ls := labels(doc)
	has := func(want string) bool {
		for _, l := range ls {
			if l == want {
				return true
			}
		}
		return false
	}
	if has("before") && has("after") {
		return "before", "after", true
	}
	if len(ls) < 2 {
		return "", "", false
	}
	return ls[0], ls[1], true
}

func snapshot(doc map[string]any, label string) map[string]any {
	if m, ok := doc[label].(map[string]any); ok {
		return m
	}
	return map[string]any{}
}

// diffSnapshots renders per-metric deltas between two snapshots. Metric
// groups are the nested objects (fig8_simulate, sweep_full, ...); within
// a group every numeric metric is compared. Scalar top-level fields
// (date, go version) are ignored.
func diffSnapshots(old, new map[string]any) string {
	var b strings.Builder
	for _, group := range sortedKeys(old, new) {
		om, oldHas := old[group].(map[string]any)
		nm, newHas := new[group].(map[string]any)
		if !oldHas && !newHas {
			continue
		}
		fmt.Fprintf(&b, "  %s\n", group)
		for _, metric := range sortedKeys(om, nm) {
			ov, oldNum := toFloat(om[metric])
			nv, newNum := toFloat(nm[metric])
			switch {
			case oldNum && newNum && ov == nv:
				fmt.Fprintf(&b, "    %-14s %v (unchanged)\n", metric, trim(nv))
			case oldNum && newNum && ov != 0:
				pct := 100 * (nv - ov) / ov
				mark := ""
				if d := direction(metric); d != 0 && float64(d)*pct < 0 {
					// The metric moved against its direction; record the
					// magnitude for -fail-over and flag it in the listing.
					regressions = append(regressions, regression{group, metric, -float64(d) * pct})
					mark = "  <- regressed"
				}
				fmt.Fprintf(&b, "    %-14s %v -> %v (%+.1f%%)%s\n", metric, trim(ov), trim(nv), pct, mark)
			case oldNum && newNum:
				fmt.Fprintf(&b, "    %-14s %v -> %v\n", metric, trim(ov), trim(nv))
			case oldNum:
				fmt.Fprintf(&b, "    %-14s %v -> (gone)\n", metric, trim(ov))
			case newNum:
				fmt.Fprintf(&b, "    %-14s (new) -> %v\n", metric, trim(nv))
			}
		}
	}
	return b.String()
}

func sortedKeys(ms ...map[string]any) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}

func toFloat(v any) (float64, bool) {
	f, ok := v.(float64) // encoding/json decodes every JSON number as float64
	return f, ok
}

// trim prints a metric without the float64 noise JSON decoding adds to
// integral values.
func trim(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.3f", f)
}
