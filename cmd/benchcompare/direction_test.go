package main

import (
	"sort"
	"testing"
)

// TestDirectionVetMetrics pins how the BENCH_PR10.json vet_* groups are
// judged: timings and per-class costs regress upward, the speedup
// regresses downward, and the counts (findings, advisories, the
// extrapolation honesty flag) are reported but never judged — a new
// analyzer legitimately changes them.
func TestDirectionVetMetrics(t *testing.T) {
	cases := []struct {
		metric string
		want   int
	}{
		{"seconds", -1},
		{"assemble_seconds", -1},
		{"us_per_class", -1},
		{"speedup_vs_cold_sweep", +1},
		{"findings", 0},
		{"advisories", 0},
		{"predicted_refusals", 0},
		{"sampled_classes", 0},
		{"extrapolated", 0},
	}
	for _, tc := range cases {
		if got := direction(tc.metric); got != tc.want {
			t.Errorf("direction(%q) = %+d, want %+d", tc.metric, got, tc.want)
		}
	}
}

// TestNaturalLessSnapshotOrder pins the snapshot ordering that picks the
// "latest two" BENCH files: embedded numbers compare as magnitudes, so
// the PR 10 snapshot is the newest, not lexically older than PR 2.
func TestNaturalLessSnapshotOrder(t *testing.T) {
	files := []string{
		"BENCH_PR10.json", "BENCH_PR2.json", "BENCH_PR7.json",
		"BENCH_PR4.json", "BENCH_PR3.json", "BENCH_PR6.json",
	}
	sort.Slice(files, func(i, j int) bool { return naturalLess(files[i], files[j]) })
	want := []string{
		"BENCH_PR2.json", "BENCH_PR3.json", "BENCH_PR4.json",
		"BENCH_PR6.json", "BENCH_PR7.json", "BENCH_PR10.json",
	}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", files, want)
		}
	}
	less := []struct{ a, b string }{
		{"BENCH_PR9.json", "BENCH_PR10.json"},
		{"BENCH_PR2.json", "BENCH_PR10.json"},
		{"a1b2", "a1b10"},
		{"a", "b"},
		{"x1", "x1y"},
	}
	for _, p := range less {
		if !naturalLess(p.a, p.b) {
			t.Errorf("naturalLess(%q, %q) = false, want true", p.a, p.b)
		}
		if naturalLess(p.b, p.a) {
			t.Errorf("naturalLess(%q, %q) = true, want false", p.b, p.a)
		}
	}
	if naturalLess("same", "same") {
		t.Errorf("naturalLess(same, same) = true, want false")
	}
}
