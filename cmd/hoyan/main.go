// Command hoyan is the CLI front end of the verifier: it loads a network
// directory (topology.txt + per-router .cfg files, as written by
// hoyangen) and answers the verification questions of §5 — route and
// packet reachability under failures, role equivalence, racing — plus the
// full daily audit of Figure 2.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"hoyan"
	"hoyan/internal/behavior"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/dataplane"
	"hoyan/internal/dist"
	"hoyan/internal/gen"
	"hoyan/internal/netaddr"
	"hoyan/internal/racing"
	"hoyan/internal/topo"
	"hoyan/internal/vet"
)

// vetReport is the envelope of `hoyan vet -json` — the same schema
// family hoyand's GET /v1/vet serves.
type vetReport struct {
	Findings    int              `json:"findings"`
	Advisories  int              `json:"advisories"`
	Diagnostics []vet.Diagnostic `json:"diagnostics"`
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: hoyan <command> [flags]

commands:
  route   -dir DIR -prefix P -router R [-k N]   route reachability under failures
  packet  -dir DIR -prefix P -src R [-k N]      packet reachability to the gateway
  equiv   -dir DIR -a R1 -b R2                  role equivalence of two routers
  racing  -dir DIR -prefix P                    update-racing ambiguity
  audit   -dir DIR [-k N]                       full audit (conflicts, groups, racing)
  update  -dir DIR -device R -lines "l1;l2"     what-if check of an incremental update
  check   -dir DIR -intents FILE [-k N]         verify an operator intent file
  vet     -dir DIR [-json] [-only a,b] [-k N]   static configuration analysis: find
                                                config defects and predict modular
                                                refusals without simulating; exit 1
                                                on findings (info advisories never
                                                fail a run), 2 on usage errors
  sweep   -dir DIR -workers a:p,b:p [-k N]      distributed whole-network sweep
          [-retries N] [-req-timeout D] [-dial-timeout D]
          [-hedge-after D] [-partial]           fault-tolerance knobs
          [-no-classes]                         one simulation per prefix instead
                                                of per behavior class
          [-baseline FILE]                      incremental re-verification: diff
                                                against a saved baseline, simulate
                                                only invalidated classes, replay
                                                the rest (with -workers, only the
                                                dirty classes are dispatched)
          [-save-baseline FILE]                 local sweep that also captures a
                                                baseline store (reports, taints,
                                                portable conditions)
          [-no-incremental]                     ignore -baseline, sweep cold
          [-audit-sample F] [-threads N]        local sweep knobs: re-simulate a
                                                fraction of replicas/replays;
                                                goroutines (0 = GOMAXPROCS)
          [-journal FILE]                       crash-safe sweep session: journal
                                                class completions to FILE so a
                                                killed coordinator can resume
          [-resume]                             resume the -journal session:
                                                replay journaled classes, dispatch
                                                only the remainder
          [-session ID]                         session id recorded in the journal

exit codes:
  0  verified clean
  1  violations found, or the run errored
  2  usage error
  3  partial result: -partial was set and some prefixes never completed
     (the sweep is incomplete, whatever it did complete is reported)

every command also accepts -cpuprofile FILE and -memprofile FILE to
write pprof profiles of the run.
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", "", "network directory (topology.txt + *.cfg)")
	prefix := fs.String("prefix", "", "prefix in CIDR form")
	router := fs.String("router", "", "target router")
	src := fs.String("src", "", "source router")
	a := fs.String("a", "", "first router")
	b := fs.String("b", "", "second router")
	k := fs.Int("k", 3, "failure budget")
	device := fs.String("device", "", "device to update")
	lines := fs.String("lines", "", "update command lines, ';'-separated")
	workers := fs.String("workers", "", "comma-separated worker addresses")
	intents := fs.String("intents", "", "intent file path")
	dopts := dist.DefaultOptions()
	retries := fs.Int("retries", dopts.MaxAttempts, "sweep: per-prefix attempts before giving up")
	reqTimeout := fs.Duration("req-timeout", dopts.RequestTimeout, "sweep: per-request deadline")
	dialTimeout := fs.Duration("dial-timeout", dopts.DialTimeout, "sweep: per-dial deadline")
	hedgeAfter := fs.Duration("hedge-after", 0, "sweep: re-dispatch stragglers to idle workers after this long (0 = off)")
	partial := fs.Bool("partial", false, "sweep: report failed prefixes instead of aborting the run")
	noClasses := fs.Bool("no-classes", false, "sweep: simulate every prefix instead of one representative per behavior class")
	modular := fs.Bool("modular", false, "sweep: per-region passes stitched through interface summaries, O(WAN/regions) working set (falls back to monolithic, loudly, when no usable cut exists)")
	baseline := fs.String("baseline", "", "sweep: baseline result store for incremental re-verification")
	saveBaseline := fs.String("save-baseline", "", "sweep: write a baseline result store after a local sweep")
	noIncr := fs.Bool("no-incremental", false, "sweep: ignore -baseline and sweep cold")
	auditSample := fs.Float64("audit-sample", 0, "sweep: fraction of replicated members and cached replays to re-simulate and check")
	threads := fs.Int("threads", 0, "sweep: local goroutines when no -workers given (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "vet: emit machine-readable diagnostics instead of text")
	only := fs.String("only", "", "vet: comma-separated analyzer names to run (default: all)")
	journal := fs.String("journal", "", "sweep: journal class completions to this file (crash-safe session)")
	resume := fs.Bool("resume", false, "sweep: resume the -journal session instead of starting fresh")
	sessionID := fs.String("session", "", "sweep: session id recorded in the journal (default derived from pid)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(os.Args[2:])

	startProfiles(*cpuprofile, *memprofile)
	if *dir == "" {
		fail("missing -dir")
	}
	net, snap, err := gen.LoadDir(*dir)
	if err != nil {
		fail(err.Error())
	}
	build := func(snap config.Snapshot) (*core.Model, *core.Simulator) {
		m, err := core.Assemble(net, snap, behavior.TrueProfiles())
		if err != nil {
			fail(err.Error())
		}
		opts := core.DefaultOptions()
		opts.K = *k
		return m, core.NewSimulator(m, opts)
	}

	switch cmd {
	case "route":
		need(*prefix, "-prefix")
		need(*router, "-router")
		m, sim := build(snap)
		p := mustPrefix(*prefix)
		res, err := sim.Run(p)
		if err != nil {
			fail(err.Error())
		}
		id, ok := m.Resolve(*router)
		if !ok {
			fail("unknown router " + *router)
		}
		min, flen := res.MinFailuresToLose(id, core.AnyRouteTo(p))
		fmt.Printf("route %s @ %s: reachable=%v\n", p, *router, res.Reachable(id, core.AnyRouteTo(p)))
		if min > *k {
			fmt.Printf("  survives any %d link failures (formula len %d)\n", *k, flen)
		} else {
			fs, _ := res.WitnessFailure(id, core.AnyRouteTo(p))
			var names []string
			for _, l := range fs {
				names = append(names, m.Net.Link(l).Name)
			}
			fmt.Printf("  breaks with %d failures: %v\n", min, names)
		}
	case "packet":
		need(*prefix, "-prefix")
		need(*src, "-src")
		m, sim := build(snap)
		p := mustPrefix(*prefix)
		res, err := sim.Run(p)
		if err != nil {
			fail(err.Error())
		}
		id, ok := m.Resolve(*src)
		if !ok {
			fail("unknown router " + *src)
		}
		anns := m.AnnouncersOf(p)
		if len(anns) == 0 {
			fail("nobody announces " + p.String())
		}
		fib := dataplane.Build(res)
		pr := fib.PacketReach(id, 0, p.Addr+1, anns[0])
		min := sim.F.MinFailuresToViolate(pr.Cond)
		fmt.Printf("packet %s -> %s (gw %s): reachable=%v min-failures=%s\n",
			*src, p, m.Net.Node(anns[0]).Name, sim.F.Eval(pr.Cond, nil), minStr(min, *k))
	case "equiv":
		need(*a, "-a")
		need(*b, "-b")
		m, sim := build(snap)
		na, ok1 := m.Resolve(*a)
		nb, ok2 := m.Resolve(*b)
		if !ok1 || !ok2 {
			fail("unknown router")
		}
		diffs := 0
		for _, p := range m.AnnouncedPrefixes() {
			res, err := sim.Run(p)
			if err != nil {
				fail(err.Error())
			}
			for _, d := range res.EquivalentRoles(na, nb) {
				diffs++
				fmt.Printf("  %s: %s (%s=%s, %s=%s)\n", d.Prefix, d.Field, *a, d.A, *b, d.B)
			}
		}
		if diffs == 0 {
			fmt.Printf("%s and %s are equivalent roles\n", *a, *b)
		} else {
			fmt.Printf("%d divergences\n", diffs)
			exit(1)
		}
	case "racing":
		need(*prefix, "-prefix")
		_, sim := build(snap)
		rep, err := racing.Detect(sim, mustPrefix(*prefix), racing.DefaultOptions())
		if err != nil {
			fail(err.Error())
		}
		if rep.Ambiguous {
			fmt.Printf("AMBIGUOUS: %d convergences; order-dependent at %d routers\n",
				len(rep.Solutions), len(rep.AmbiguousNodes))
			exit(1)
		}
		fmt.Println("convergence is deterministic")
	case "audit":
		m, sim := build(snap)
		violations := 0
		for _, p := range m.AnnouncedPrefixes() {
			if anns := m.AnnouncersOf(p); len(anns) > 1 {
				var names []string
				for _, x := range anns {
					names = append(names, m.Net.Node(x).Name)
				}
				fmt.Printf("[conflict] %s announced by %v\n", p, names)
				violations++
			}
		}
		groups := m.Net.NodeGroups()
		groupNames := make([]string, 0, len(groups))
		for g := range groups {
			groupNames = append(groupNames, g)
		}
		sort.Strings(groupNames)
		for _, g := range groupNames {
			members := groups[g]
			for _, p := range m.AnnouncedPrefixes() {
				res, err := sim.Run(p)
				if err != nil {
					fail(err.Error())
				}
				for i := 1; i < len(members); i++ {
					for _, d := range res.EquivalentRoles(members[0], members[i]) {
						fmt.Printf("[equivalence] group %s prefix %s: %s\n", g, d.Prefix, d.Field)
						violations++
					}
				}
			}
		}
		fmt.Printf("audit complete: %d violations\n", violations)
		if violations > 0 {
			exit(1)
		}
	case "update":
		need(*device, "-device")
		need(*lines, "-lines")
		up := config.Update{Device: *device, Lines: strings.Split(*lines, ";")}
		target, err := snap.Apply([]config.Update{up})
		if err != nil {
			fail(err.Error())
		}
		mBefore, simBefore := build(snap)
		_, simAfter := build(target)
		changed := 0
		for _, p := range mBefore.AnnouncedPrefixes() {
			resB, err := simBefore.Run(p)
			if err != nil {
				fail(err.Error())
			}
			resA, err := simAfter.Run(p)
			if err != nil {
				fail(err.Error())
			}
			for _, node := range mBefore.Net.Nodes() {
				b, okB := resB.BestUnder(node.ID, p, nil)
				a2, okA := resA.BestUnder(node.ID, p, nil)
				switch {
				case okB != okA:
					fmt.Printf("[change] %s @ %s: present %v -> %v\n", p, node.Name, okB, okA)
					changed++
				case okB && (b.Protocol != a2.Protocol || b.NextHop != a2.NextHop):
					fmt.Printf("[change] %s @ %s: %v -> %v\n", p, node.Name, b, a2)
					changed++
				}
			}
		}
		fmt.Printf("update would change %d (prefix, router) selections\n", changed)
	case "check":
		need(*intents, "-intents")
		raw, err := os.ReadFile(*intents)
		if err != nil {
			fail(err.Error())
		}
		set, err := hoyan.ParseIntents(string(raw))
		if err != nil {
			fail(err.Error())
		}
		hn, err := hoyan.LoadDirectory(*dir)
		if err != nil {
			fail(err.Error())
		}
		v, err := hn.Verifier(hoyan.Options{K: *k})
		if err != nil {
			fail(err.Error())
		}
		viols, err := v.CheckIntentSet(set)
		if err != nil {
			fail(err.Error())
		}
		for _, vi := range viols {
			fmt.Println(vi)
		}
		fmt.Printf("%d intent violations\n", len(viols))
		if len(viols) > 0 {
			exit(1)
		}
	case "vet":
		m, err := core.Assemble(net, snap, behavior.TrueProfiles())
		if err != nil {
			fail(err.Error())
		}
		analyzers := vet.Analyzers()
		if *only != "" {
			analyzers = analyzers[:0]
			for _, name := range strings.Split(*only, ",") {
				a := vet.ByName(strings.TrimSpace(name))
				if a == nil {
					fmt.Fprintf(os.Stderr, "hoyan: unknown analyzer %q\n", strings.TrimSpace(name))
					exit(2)
				}
				analyzers = append(analyzers, a)
			}
		}
		// -k mirrors the sweep the vet run front-runs: cutsound keys its
		// refusal predictions on the failure budget.
		diags, err := vet.RunBudget(m, analyzers, *k)
		if err != nil {
			fail(err.Error())
		}
		findings := vet.Findings(diags)
		if *jsonOut {
			if diags == nil {
				diags = []vet.Diagnostic{}
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(vetReport{
				Findings: findings, Advisories: len(diags) - findings, Diagnostics: diags,
			}); err != nil {
				fail(err.Error())
			}
		} else {
			for _, d := range diags {
				fmt.Println(d)
			}
			fmt.Printf("vet: %d findings, %d advisories\n", findings, len(diags)-findings)
		}
		if findings > 0 {
			exit(1)
		}
	case "sweep":
		if *saveBaseline != "" && *workers != "" {
			fail("-save-baseline captures taints and conditions locally; drop -workers")
		}
		if *journal != "" && (*workers == "" || *noClasses || *baseline != "") {
			fail("-journal needs a distributed classed sweep (-workers, no -no-classes/-baseline)")
		}
		if *resume && *journal == "" {
			fail("-resume needs -journal")
		}
		if *modular && *saveBaseline != "" {
			fail("-modular cannot capture a baseline (portable conditions require monolithic simulation)")
		}
		if *workers == "" {
			if *baseline == "" && *saveBaseline == "" && !*modular {
				fail("missing -workers (local sweeps need -baseline, -save-baseline, or -modular)")
			}
			localSweep(net, snap, *k, *noClasses, *noIncr, *modular, *auditSample, *threads, *baseline, *saveBaseline)
			exit(0)
		}
		if *baseline != "" && *noClasses {
			fmt.Println("note: -no-classes disables incremental replay; sweeping cold")
		}
		opts := dist.DefaultOptions()
		opts.MaxAttempts = *retries
		opts.RequestTimeout = *reqTimeout
		opts.DialTimeout = *dialTimeout
		opts.HedgeAfter = *hedgeAfter
		opts.AllowPartial = *partial
		// Always pin the model: multi-session workers (-extra-dirs) hold
		// several networks, and an unhashed request would silently run
		// against whichever one is their default.
		opts.ModelHash = dist.ModelHash(net, snap)
		coord := &dist.Coordinator{Addrs: strings.Split(*workers, ","), Opts: opts}
		if *baseline != "" && !*noIncr && !*noClasses {
			if store := loadBaseline(*baseline); store != nil {
				distIncrementalSweep(coord, net, snap, *k, store)
				exit(0)
			}
			fmt.Println("no usable baseline; sweeping cold")
		}
		if *modular && (*noClasses || *journal != "") {
			fail("-modular needs a classed sweep without -journal (sessions journal monolithic class completions)")
		}
		m, _ := build(snap)
		var res *dist.Result
		var err error
		if *noClasses {
			var prefixes []string
			for _, p := range m.AnnouncedPrefixes() {
				prefixes = append(prefixes, p.String())
			}
			res, err = coord.Run(prefixes, *k)
		} else {
			classes := m.Classes()
			jobs := make([][]string, 0, len(classes))
			total := 0
			for _, c := range classes {
				var cl []string
				for _, p := range c.Members {
					cl = append(cl, p.String())
				}
				total += len(cl)
				jobs = append(jobs, cl)
			}
			switch {
			case *journal != "":
				res, err = sessionSweep(coord, jobs, total, *k, *journal, *sessionID, *resume, net, snap)
			case *modular:
				res, err = modularSweep(coord, m, classes, jobs, total, *k)
			default:
				fmt.Printf("dispatching %d behavior classes for %d prefixes\n", len(jobs), total)
				res, err = coord.RunClasses(jobs, *k)
			}
		}
		if err != nil {
			fail(err.Error())
		}
		bad := 0
		for _, p := range sortedPrefixes(res.ByPrefix) {
			for _, s := range res.ByPrefix[p] {
				if !s.Reachable {
					fmt.Printf("[violation] %s unreachable at %s\n", p, s.Router)
					bad++
				}
			}
		}
		for _, f := range res.Failed {
			fmt.Printf("[failed] %s after %d dispatches: %s\n", f.Prefix, f.Dispatches, f.LastError)
		}
		if res.Requeued+res.Retried+res.Hedged > 0 {
			fmt.Printf("resilience: %d jobs re-queued, %d retried, %d hedged\n",
				res.Requeued, res.Retried, res.Hedged)
		}
		if res.Resumed+res.Redispatched > 0 {
			fmt.Printf("session: %d classes replayed from the journal, %d re-dispatched after the crash\n",
				res.Resumed, res.Redispatched)
		}
		if res.Classes+res.Resumed > 0 {
			fmt.Printf("distributed sweep: %d/%d prefixes (%d classes, %d replicated) over %d workers, %d violations\n",
				len(res.ByPrefix), len(res.ByPrefix)+len(res.Failed), res.Classes+res.Resumed, res.Replicated, len(res.Assigned), bad)
		} else {
			fmt.Printf("distributed sweep: %d/%d prefixes over %d workers, %d violations\n",
				len(res.ByPrefix), len(res.ByPrefix)+len(res.Failed), len(res.Assigned), bad)
		}
		// Exit codes (documented in usage): incompleteness dominates, so a
		// -partial run with failed prefixes is 3 even when the completed
		// subset is clean — CI must not mistake a partial sweep for a
		// verified network.
		code := 0
		if bad > 0 {
			code = 1
		}
		if len(res.Failed) > 0 {
			code = 3
		}
		if code != 0 {
			exit(code)
		}
	default:
		usage()
	}
	exit(0)
}

// finishProfiles flushes any profiles requested with -cpuprofile /
// -memprofile; every exit path must run it, hence exit() below.
var finishProfiles = func() {}

func startProfiles(cpu, mem string) {
	stopCPU := func() {}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fail(err.Error())
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err.Error())
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	finishProfiles = func() {
		stopCPU()
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hoyan:", err)
				return
			}
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hoyan:", err)
			}
			f.Close()
		}
	}
}

func exit(code int) {
	finishProfiles()
	os.Exit(code)
}

func need(v, name string) {
	if v == "" {
		fail("missing " + name)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hoyan:", msg)
	exit(1)
}

// sortedPrefixes returns the result's prefix keys in sorted order so
// violation reports print deterministically run to run.
func sortedPrefixes(byPrefix map[string][]dist.RouterSummary) []string {
	keys := make([]string, 0, len(byPrefix))
	for p := range byPrefix {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	return keys
}

func mustPrefix(s string) netaddr.Prefix {
	p, err := netaddr.Parse(s)
	if err != nil {
		fail(err.Error())
	}
	return p
}

func minStr(min, k int) string {
	if min > k {
		return fmt.Sprintf(">%d", k)
	}
	return fmt.Sprint(min)
}

// sessionSweep runs (or resumes) a journaled distributed sweep: every
// class completion is fsync'd to the journal before it is counted, so a
// killed coordinator resumes with -resume and re-simulates only the
// classes the journal does not cover. The journal is removed after a
// fully successful run and kept (with a hint) otherwise.
func sessionSweep(coord *dist.Coordinator, jobs [][]string, total, k int,
	path, id string, resume bool, net *topo.Network, snap config.Snapshot) (*dist.Result, error) {
	modelHash := dist.ModelHash(net, snap)
	var s *dist.Session
	var err error
	if resume {
		s, err = dist.Resume(path)
		if err != nil {
			return nil, err
		}
		if err := s.MatchesClasses(jobs); err != nil {
			s.Close()
			return nil, err
		}
		fmt.Printf("resuming session %s: %d/%d classes journaled done, %d were in flight at the crash\n",
			s.ID(), s.Completed(), len(jobs), s.Redispatched())
	} else {
		if id == "" {
			id = fmt.Sprintf("sweep-%d", os.Getpid())
		}
		s, err = dist.NewSession(path, id, k, "", modelHash, jobs)
		if err != nil {
			return nil, err
		}
		fmt.Printf("session %s: dispatching %d behavior classes for %d prefixes (journal %s)\n",
			id, len(jobs), total, path)
	}
	defer s.Close()
	coord.Opts.Session = s.ID()
	coord.Opts.ModelHash = modelHash
	res, err := coord.RunSession(s, k)
	if err == nil && res != nil && len(res.Failed) == 0 {
		if rmErr := s.Remove(); rmErr != nil {
			fmt.Fprintln(os.Stderr, "hoyan: removing completed journal:", rmErr)
		}
	} else {
		fmt.Printf("journal kept at %s; resume with: hoyan sweep ... -journal %s -resume\n", path, path)
	}
	return res, err
}

// loadBaseline loads a result store, degrading the way the operator
// wants: a partially usable store (bad records quarantined in memory) is
// kept with a warning, an unusable one is quarantined on disk and nil is
// returned so the caller sweeps cold.
func loadBaseline(path string) *hoyan.ResultStore {
	store, err := hoyan.LoadResultStore(path)
	var ce *hoyan.CorruptStoreError
	if errors.As(err, &ce) {
		fmt.Fprintln(os.Stderr, "hoyan: warning:", ce.Error())
		if ce.Usable {
			return store
		}
		qp, qerr := hoyan.QuarantineResultStore(path)
		if qerr != nil {
			fail(qerr.Error())
		}
		fmt.Fprintf(os.Stderr, "hoyan: corrupt store moved to %s\n", qp)
		return nil
	}
	if err != nil {
		fail(err.Error())
	}
	return store
}

// localSweep runs Sweep/SweepBaseline in-process — the only mode that can
// capture a baseline store (taint sets and portable conditions come from
// live simulator state, which remote workers do not ship back).
func localSweep(net *topo.Network, snap config.Snapshot, k int, noClasses, noIncr, modular bool,
	auditSample float64, threads int, baselinePath, savePath string) {
	hn := hoyan.NetworkFrom(net, snap)
	opts := hoyan.Options{K: k, NoClasses: noClasses, NoIncremental: noIncr, Modular: modular, AuditSample: auditSample}
	if baselinePath != "" {
		opts.Baseline = loadBaseline(baselinePath)
		if opts.Baseline == nil {
			fmt.Println("no usable baseline; sweeping cold")
		}
	}
	var (
		rep   *hoyan.SweepReport
		store *hoyan.ResultStore
		err   error
	)
	if savePath != "" {
		rep, store, err = hn.SweepBaseline(opts, threads)
	} else {
		rep, err = hn.Sweep(opts, threads)
	}
	if err != nil {
		fail(err.Error())
	}
	for _, v := range rep.Violations {
		fmt.Printf("[violation] %s %s @ %s: %s\n", v.Kind, v.Prefix, v.Router, v.Details)
	}
	printInvalidation(rep.Delta, rep.Invalidation)
	fmt.Println(rep)
	if savePath != "" {
		if err := store.Save(savePath); err != nil {
			fail(err.Error())
		}
		fmt.Printf("baseline written to %s (%d classes)\n", savePath, len(store.Classes))
	}
	if len(rep.Violations) > 0 {
		exit(1)
	}
}

// modularSweep dispatches each class representative as one home pass
// plus per-region import passes (dist.RunModular), so every worker holds
// one region's working set instead of the whole WAN. When the model has
// no usable cut it falls back — loudly — to the monolithic class run,
// matching the in-process sweep's refusal contract.
func modularSweep(coord *dist.Coordinator, m *core.Model, classes []core.PrefixClass,
	jobs [][]string, total, k int) (*dist.Result, error) {
	pt, err := core.NewPartition(m)
	if err != nil {
		fmt.Printf("note: modular fallback to monolithic: %v\n", err)
		fmt.Printf("dispatching %d behavior classes for %d prefixes\n", len(jobs), total)
		return coord.RunClasses(jobs, k)
	}
	regions := make([]string, 0, pt.NumRegions())
	for i := 0; i < pt.NumRegions(); i++ {
		regions = append(regions, pt.RegionName(i))
	}
	mcs := make([]dist.ModularClass, 0, len(classes))
	for i, cl := range classes {
		mc := dist.ModularClass{Members: jobs[i]}
		if hi, herr := pt.FamilyHome(m, cl.Rep); herr == nil {
			mc.Home = pt.RegionName(hi)
		} else {
			fmt.Printf("note: %s falls back to monolithic: %v\n", cl.Rep, herr)
		}
		mcs = append(mcs, mc)
	}
	// Advisory pre-flight: predict the cut's refusals statically so the
	// fallback load is visible before a single worker is dispatched.
	if pred := vet.PredictRefusals(m, k); pred.RefusedClasses() > 0 {
		fmt.Printf("vet pre-flight: %d of %d classes predicted to refuse the cut and fall back to monolithic\n",
			pred.RefusedClasses(), len(pred.Classes))
	}
	fmt.Printf("dispatching %d behavior classes for %d prefixes across %d regions\n", len(jobs), total, len(regions))
	res, err := coord.RunModular(mcs, regions, k)
	if res != nil {
		fmt.Printf("modular: %d region passes, %d representatives fell back to monolithic\n",
			res.ModularPasses, res.ModularRefused)
	}
	return res, err
}

// distIncrementalSweep plans invalidation locally against a saved
// baseline and dispatches only the dirty classes to the workers; clean
// classes' reports are replayed from the baseline client-side.
func distIncrementalSweep(coord *dist.Coordinator, net *topo.Network, snap config.Snapshot, k int, store *hoyan.ResultStore) {
	plan, err := hoyan.NetworkFrom(net, snap).PlanIncremental(hoyan.Options{K: k}, store)
	if err != nil {
		fail(err.Error())
	}
	printInvalidation(plan.Delta, plan.Stats)
	dirtyPrefixes := 0
	for _, job := range plan.DirtyJobs {
		dirtyPrefixes += len(job)
	}
	res := &dist.Result{}
	if len(plan.DirtyJobs) > 0 {
		fmt.Printf("dispatching %d invalidated classes for %d prefixes\n", len(plan.DirtyJobs), dirtyPrefixes)
		if res, err = coord.RunClasses(plan.DirtyJobs, k); err != nil {
			fail(err.Error())
		}
	}
	bad := 0
	for _, p := range sortedPrefixes(res.ByPrefix) {
		for _, s := range res.ByPrefix[p] {
			if !s.Reachable {
				fmt.Printf("[violation] %s unreachable at %s\n", p, s.Router)
				bad++
			}
		}
	}
	for _, v := range plan.ReplayedViolations {
		fmt.Printf("[violation] %s unreachable at %s (replayed from baseline)\n", v.Prefix, v.Router)
		bad++
	}
	for _, f := range res.Failed {
		fmt.Printf("[failed] %s after %d dispatches: %s\n", f.Prefix, f.Dispatches, f.LastError)
	}
	if res.Requeued+res.Retried+res.Hedged > 0 {
		fmt.Printf("resilience: %d jobs re-queued, %d retried, %d hedged\n",
			res.Requeued, res.Retried, res.Hedged)
	}
	fmt.Printf("incremental distributed sweep: %d prefixes simulated in %d classes over %d workers, %d prefixes replayed from %d cached classes, %d violations\n",
		len(res.ByPrefix), len(plan.DirtyJobs), len(res.Assigned), len(plan.ReplayedSummaries), plan.ReplayedClasses, bad)
	code := 0
	if bad > 0 {
		code = 1
	}
	if len(res.Failed) > 0 {
		code = 3 // partial result: see the exit-code table in usage
	}
	if code != 0 {
		exit(code)
	}
}

// printInvalidation reports what an incremental sweep decided and why.
func printInvalidation(delta *core.ModelDelta, st *core.InvalidationStats) {
	if st == nil {
		return
	}
	if delta != nil && !delta.Empty() {
		fmt.Println("model delta vs baseline:")
		for _, it := range delta.Items {
			fmt.Printf("  %s\n", it)
		}
	}
	for _, note := range st.Notes {
		fmt.Printf("note: %s\n", note)
	}
	mode := "selective"
	if st.FullInvalidation {
		mode = "full"
	}
	fmt.Printf("invalidation (%s): %d classes dirty, %d replayed, %d replays audited\n",
		mode, st.ClassesDirty, st.ClassesReplayed, st.ReplaysAudited)
}
