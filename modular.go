package hoyan

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/igp"
	"hoyan/internal/netaddr"
	"hoyan/internal/topo"
	"hoyan/internal/vet"
)

// ModularStats reports what a modular sweep actually did — including,
// loudly, every fallback to monolithic simulation (DESIGN.md, "Modular
// verification": refusal is part of the soundness argument, so it is
// never silent).
type ModularStats struct {
	// Regions is the size of the partition the sweep cut the model into.
	Regions int
	// Passes counts restricted region passes executed (home + import).
	Passes int
	// Refused counts units (class representatives, audit members, replay
	// audits) that fell back to monolithic simulation because a cut could
	// not soundly express their behavior.
	Refused int
	// Predicted counts prefix classes the static pre-flight
	// (internal/vet's cutsound analyzer) expected the cut to refuse,
	// before any pass was dispatched. The pre-flight is advisory — the
	// authoritative refusal still comes from the core layer at simulation
	// time — but the two counts agreeing on a plain classed sweep is the
	// predictor's accuracy contract.
	Predicted int
	// Fallback is set when the whole sweep ran monolithically because no
	// usable partition exists (region-less BGP speakers, or one region).
	Fallback bool
	// Notes records the refusal reasons (deduplicated, in first-seen order).
	Notes []string
}

// unitKind classifies one modular work unit.
type unitKind uint8

const (
	unitRep         unitKind = iota // class representative (replicates to members)
	unitAudit                       // member audit: diff against the representative
	unitReplayAudit                 // incremental replay audit: diff against the record
)

// modVerdict is one node's verdict from the pass covering its region.
type modVerdict struct {
	node      topo.NodeID
	min       int
	reachable bool
}

// modUnit is one prefix simulation of a modular sweep, assembled from
// one home pass plus one import pass per remaining region.
type modUnit struct {
	job     *sweepJob
	kind    unitKind
	prefix  netaddr.Prefix
	repUnit int // index of the representative unit for unitAudit; -1 otherwise

	home     int
	summary  *core.CutSummary
	verdicts []modVerdict
	simTime  time.Duration
	refused  string // non-empty: reason this unit fell back to monolithic

	anchorNode topo.NodeID // replay-audit condition anchor; NoNode when none
	anchorOK   bool

	sum   PrefixSummary
	viols []Violation
}

// sweepModular executes the dispatch list region by region. Round 1 runs
// every unit's home pass (per home region, so only one region's shared
// state is resident at a time) and captures the cut summaries; round 2
// runs, per region, the import passes of every unit homed elsewhere.
// Units a cut cannot soundly express are refused by the core layer and
// re-run monolithically at the end against a single global Shared.
// Verdicts merge in global node order, reproducing the monolithic
// sweepOne fold exactly.
func (n *Network) sweepModular(model *core.Model, jobs []sweepJob, audit map[netaddr.Prefix]bool,
	opts Options, copts core.Options, workers, resetEvery int, rep *SweepReport) error {
	ms := &ModularStats{}
	rep.Modular = ms
	note := func(reason string) {
		for _, s := range ms.Notes {
			if s == reason {
				return
			}
		}
		ms.Notes = append(ms.Notes, reason)
	}

	// Static pre-flight: predict which classes the cut will refuse before
	// any pass runs, so the operator sees the fallback load up front
	// instead of discovering it one wasted home pass at a time.
	pred := vet.PredictRefusals(model, opts.K)
	ms.Predicted = pred.RefusedClasses()
	if ms.Predicted > 0 {
		note(fmt.Sprintf("vet pre-flight: %d of %d classes predicted to refuse the cut", ms.Predicted, len(pred.Classes)))
	}

	// The work units: one per representative, plus one per selected audit
	// member and replay audit — each is a full (home + imports) modular
	// simulation of one prefix.
	var units []*modUnit
	for ji := range jobs {
		job := &jobs[ji]
		if job.audit != nil {
			u := &modUnit{job: job, kind: unitReplayAudit, prefix: job.members[0], repUnit: -1, anchorNode: topo.NoNode}
			if rec := job.audit; rec.Cond != nil && rec.CondRouter != "" {
				node, ok := model.Net.NodeByName(rec.CondRouter)
				if !ok {
					return fmt.Errorf("hoyan: incremental replay audit for %s: anchor router %q not in model", u.prefix, rec.CondRouter)
				}
				u.anchorNode = node.ID
			}
			units = append(units, u)
			continue
		}
		ri := len(units)
		units = append(units, &modUnit{job: job, kind: unitRep, prefix: job.members[0], repUnit: -1, anchorNode: topo.NoNode})
		for _, p := range job.members[1:] {
			if audit[p] {
				units = append(units, &modUnit{job: job, kind: unitAudit, prefix: p, repUnit: ri, anchorNode: topo.NoNode})
			}
		}
	}

	pt, err := core.NewPartition(model)
	if err != nil {
		// Global refusal: no usable cut. Every unit runs monolithically.
		ms.Fallback = true
		note(err.Error())
		for _, u := range units {
			u.refused = err.Error()
		}
	} else {
		ms.Regions = pt.NumRegions()
		for _, u := range units {
			home, err := pt.FamilyHome(model, u.prefix)
			if err != nil {
				u.refused = err.Error()
				note(err.Error())
				continue
			}
			u.home = home
			if u.anchorNode != topo.NoNode && pt.RegionOf(u.anchorNode) < 0 {
				u.refused = fmt.Sprintf("replay-audit anchor %q outside every region", u.job.audit.CondRouter)
				note(u.refused)
			}
		}

		cut := core.CutMemo(model, copts, pt)
		// Round 1: home passes, one region's working set resident at a time.
		for r := 0; r < pt.NumRegions(); r++ {
			var ru []*modUnit
			for _, u := range units {
				if u.refused == "" && u.home == r {
					ru = append(ru, u)
				}
			}
			if err := runRegionPhase(ru, model, copts, pt, r, cut, true, opts.K, workers, resetEvery, ms); err != nil {
				return err
			}
		}
		// Round 2: import passes — per region, every unit homed elsewhere.
		for r := 0; r < pt.NumRegions(); r++ {
			var ru []*modUnit
			for _, u := range units {
				if u.refused == "" && u.home != r {
					ru = append(ru, u)
				}
			}
			if err := runRegionPhase(ru, model, copts, pt, r, cut, false, opts.K, workers, resetEvery, ms); err != nil {
				return err
			}
		}
		for _, u := range units {
			if u.refused != "" {
				note(u.refused)
			}
		}
	}

	// Merge per-region verdicts in global node order — the exact fold of
	// the monolithic sweepOne.
	for _, u := range units {
		if u.refused != "" {
			continue
		}
		slices.SortFunc(u.verdicts, func(a, b modVerdict) int { return int(a.node) - int(b.node) })
		u.sum, u.viols = mergeVerdicts(model, u.prefix, u.verdicts, opts.K, u.simTime)
	}

	// Refused units re-run monolithically against one global Shared —
	// the loud fallback, never a silent wrong answer.
	var refused []*modUnit
	for _, u := range units {
		if u.refused != "" {
			refused = append(refused, u)
		}
	}
	ms.Refused = len(refused)
	if len(refused) > 0 {
		gsh := core.NewShared(model, copts)
		p := workers
		if p > len(refused) {
			p = len(refused)
		}
		errs := make([]error, p)
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sim := gsh.NewSimulator()
				done := 0
				for i := w; i < len(refused); i += p {
					u := refused[i]
					if done > 0 && done%resetEvery == 0 {
						sim.Reset()
					}
					done++
					sum, viols, res, err := sweepOne(sim, model, u.prefix, opts.K)
					if err != nil {
						errs[w] = err
						return
					}
					if u.kind == unitReplayAudit {
						if err := auditReplay(u.job.audit, sum, viols, res, model, u.prefix); err != nil {
							errs[w] = err
							return
						}
						u.anchorOK = true
					}
					u.sum, u.viols = sum, viols
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	// Assemble the report: replicate representatives to members, run the
	// audit diffs (representatives merged above, so order is safe).
	for _, u := range units {
		switch u.kind {
		case unitRep:
			for _, p := range u.job.members {
				s := u.sum
				s.Prefix = p.String()
				rep.Prefixes = append(rep.Prefixes, s)
				for _, v := range u.viols {
					v.Prefix = p.String()
					rep.Violations = append(rep.Violations, v)
				}
			}
		case unitAudit:
			repU := units[u.repUnit]
			if err := diffAudit(repU.sum, repU.viols, u.sum, u.viols, repU.prefix, u.prefix); err != nil {
				return err
			}
			rep.Audited++
		case unitReplayAudit:
			if u.refused == "" {
				rec := u.job.audit
				if err := diffAudit(rec.Summary, rec.Violations, u.sum, u.viols, u.prefix, u.prefix); err != nil {
					return fmt.Errorf("hoyan: incremental replay audit: stale cached report: %w", err)
				}
				if u.anchorNode != topo.NoNode && !u.anchorOK {
					return fmt.Errorf("hoyan: internal: replay-audit anchor for %s never checked by any region pass", u.prefix)
				}
			}
			if rep.Invalidation != nil {
				rep.Invalidation.ReplaysAudited++
			}
		}
	}
	return nil
}

// runRegionPhase runs one region's passes of a round over the phase's
// units, sharded across workers. The region's Shared (its IGP memo and
// cross-prefix memo, layered over the sweep's cut memo) lives only for
// this phase — that scoping is the modular memory win.
func runRegionPhase(units []*modUnit, model *core.Model, copts core.Options, pt *core.Partition,
	region int, cut *igp.Memo, home bool, k, workers, resetEvery int, ms *ModularStats) error {
	if len(units) == 0 {
		return nil
	}
	ms.Passes += len(units)
	sh := core.NewRegionShared(model, copts, pt, region, cut)
	p := workers
	if p > len(units) {
		p = len(units)
	}
	if p < 1 {
		p = 1
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sim := sh.NewSimulator()
			done := 0
			for i := w; i < len(units); i += p {
				if done > 0 && done%resetEvery == 0 {
					sim.Reset()
				}
				done++
				if err := runUnitPass(sim, units[i], model, pt, region, home, k); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runUnitPass runs one unit's pass in one region: the home pass captures
// the unit's cut summary, an import pass consumes it. A core refusal
// (*core.UnsoundCut) marks the unit for monolithic fallback instead of
// failing the sweep.
func runUnitPass(sim *core.Simulator, u *modUnit, model *core.Model, pt *core.Partition,
	region int, home bool, k int) error {
	t0 := time.Now()
	var imported *core.CutSummary
	if !home {
		imported = u.summary
	}
	res, sum, err := sim.RunRegion(u.prefix, pt, region, imported)
	var uc *core.UnsoundCut
	if errors.As(err, &uc) {
		u.refused = uc.Reason
		return nil
	}
	if err != nil {
		return err
	}
	if home {
		u.summary = sum
	}
	pat := core.AnyRouteTo(u.prefix)
	for _, node := range model.Net.Nodes() {
		if pt.RegionOf(node.ID) != region || model.Configs[node.ID].BGP == nil {
			continue
		}
		v := modVerdict{node: node.ID, min: -1, reachable: res.Reachable(node.ID, pat)}
		if v.reachable {
			v.min, _ = res.MinFailuresToLose(node.ID, pat)
		}
		u.verdicts = append(u.verdicts, v)
	}
	if u.kind == unitReplayAudit && u.anchorNode != topo.NoNode && pt.RegionOf(u.anchorNode) == region {
		rec := u.job.audit
		fresh := res.ReachCond(u.anchorNode, pat)
		imported := rec.Cond.Import(res.Sim.F)
		if len(imported) != 1 || !res.Sim.F.Equivalent(imported[0], fresh) {
			return fmt.Errorf("hoyan: incremental replay audit for %s: stored reachability condition at %s no longer equivalent to fresh simulation", u.prefix, rec.CondRouter)
		}
		u.anchorOK = true
	}
	u.simTime += time.Since(t0)
	return nil
}

// mergeVerdicts folds a unit's node-ordered verdicts into the report
// fields, replicating sweepOne's fold: a violation per unreachable BGP
// speaker, and the smallest within-budget failure count (first node in
// ID order wins ties) as the prefix's weak point.
func mergeVerdicts(model *core.Model, prefix netaddr.Prefix, vs []modVerdict, k int, simTime time.Duration) (PrefixSummary, []Violation) {
	sum := PrefixSummary{Prefix: prefix.String(), MinFailures: -1, SimTime: simTime}
	minIdx, nviol := scanVerdicts(vs, k)
	if minIdx >= 0 {
		sum.MinFailures = vs[minIdx].min
		sum.WeakestRouter = model.Net.Node(vs[minIdx].node).Name
	}
	viols := make([]Violation, 0, nviol)
	for _, v := range vs {
		if !v.reachable {
			viols = append(viols, Violation{
				Kind: "reachability", Prefix: sum.Prefix,
				Router: model.Net.Node(v.node).Name, Details: "no route with all links up",
			})
		}
	}
	return sum, viols
}

// scanVerdicts selects the weakest in-budget verdict (the index of the
// first minimal min <= k among reachable nodes — sweepOne's strict-less
// fold) and counts violations. It runs once per unit per sweep over
// every BGP speaker's verdict, on the summary evaluation path.
//
//hoyan:hotpath
func scanVerdicts(vs []modVerdict, k int) (minIdx, nviol int) {
	minIdx = -1
	for i := range vs {
		if !vs[i].reachable {
			nviol++
			continue
		}
		if vs[i].min <= k && (minIdx == -1 || vs[i].min < vs[minIdx].min) {
			minIdx = i
		}
	}
	return minIdx, nviol
}
