package hoyan

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeStore(t *testing.T, path string) *ResultStore {
	t.Helper()
	st := &ResultStore{
		OptionsHash: "k=3;prune=true;simplify=true;profiles=tuned",
		K:           3,
		Configs:     map[string]string{"A": "hostname A\n"},
		Classes: []ClassRecord{
			{
				Members:      []string{"10.0.0.0/24"},
				Summary:      PrefixSummary{Prefix: "10.0.0.0/24", MinFailures: -1},
				TaintDevices: []string{"A"},
			},
			{
				Members:      []string{"10.1.0.0/24", "10.1.1.0/24"},
				Summary:      PrefixSummary{Prefix: "10.1.0.0/24", MinFailures: 2, WeakestRouter: "A"},
				TaintDevices: []string{"A"},
			},
		},
	}
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLoadResultStoreTruncatedIsLoud(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	writeStore(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := LoadResultStore(path)
	if st != nil {
		t.Fatal("a truncated store must not be returned as usable")
	}
	var ce *CorruptStoreError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptStoreError, got %T: %v", err, err)
	}
	if ce.Usable {
		t.Fatal("truncated JSON is not a usable store")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("the error must name the file: %v", err)
	}
	if !strings.Contains(err.Error(), "NOT usable") {
		t.Fatalf("the error must say whether the store is usable: %v", err)
	}
}

func TestLoadResultStoreQuarantinesBadRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	st := writeStore(t, path)
	st.Classes[1].Members = nil // damage one record, keep the other
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadResultStore(path)
	var ce *CorruptStoreError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptStoreError, got %T: %v", err, err)
	}
	if !ce.Usable {
		t.Fatal("one bad record must not poison the whole store")
	}
	if loaded == nil || len(loaded.Classes) != 1 || len(loaded.Quarantined) != 1 {
		t.Fatalf("want 1 kept + 1 quarantined, got %+v", loaded)
	}
	if loaded.Quarantined[0].Index != 1 || loaded.Quarantined[0].Reason == "" {
		t.Fatalf("quarantine must name the record and the reason: %+v", loaded.Quarantined[0])
	}
	if !strings.Contains(err.Error(), "usable") {
		t.Fatalf("the error must say the store is partially usable: %v", err)
	}

	// A pristine store loads silently.
	clean := filepath.Join(t.TempDir(), "clean.json")
	writeStore(t, clean)
	if _, err := LoadResultStore(clean); err != nil {
		t.Fatalf("clean store: %v", err)
	}
}

func TestQuarantineResultStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	writeStore(t, path)

	q1, err := QuarantineResultStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != path+".corrupt" {
		t.Fatalf("quarantine path %q", q1)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("the original must be moved away")
	}

	// A second quarantine of the same path picks a numbered variant
	// instead of clobbering the first.
	writeStore(t, path)
	q2, err := QuarantineResultStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if q2 == q1 {
		t.Fatal("second quarantine must not overwrite the first")
	}
	if _, err := os.Stat(q1); err != nil {
		t.Fatalf("first quarantine clobbered: %v", err)
	}
}
