GO ?= go

.PHONY: build test vet lint vet-configs race check bench bench-compare fuzz-smoke chaos scale-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs hoyanlint (cmd/hoyanlint), the project's own go/analysis-style
# suite: maporder, factorymix, hotpathalloc, netdeadline, locksift. Any
# unsuppressed diagnostic fails the build; reviewed false positives carry
# a `//lint:allow <analyzer> <reason>` comment. See DESIGN.md, "Static
# analysis".
lint:
	$(GO) run ./cmd/hoyanlint ./...

# vet-configs runs the config-level static analyzers (hoyan vet, see
# DESIGN.md "Config vet") over the committed example network. It must be
# finding-free: the corpus is the analyzers' false-positive contract in
# CI, the config-plane twin of `make lint`.
vet-configs:
	$(GO) run ./cmd/hoyan vet -dir examples/networks/small

race:
	$(GO) test -race ./...

# bench smoke-runs every benchmark once (-benchtime=1x): not a timing
# run, just a guarantee that the evaluation harness keeps compiling and
# completing. Real measurements use `go test -bench=.` defaults or
# `hoyanbench -perf`. The incremental-re-verification experiment smokes
# on the medium preset with one iteration and no snapshot write; real
# BENCH_PR4.json numbers come from `hoyanbench -exp incremental` on the
# full preset.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) run ./cmd/hoyanbench -exp incremental -incr-preset medium -incr-iters 1 -incr-out=

# bench-compare diffs the latest two committed perf snapshots
# (BENCH_*.json) with per-metric deltas. Advisory: a regression prints
# loudly but never fails the build — snapshot timings come from whatever
# machine recorded them, so CI can't hold new code to them.
bench-compare:
	-$(GO) run ./cmd/benchcompare

# chaos runs the crash-recovery and multi-session suite under the race
# detector: the faultnet × kill-point matrix (coordinator killed
# mid-sweep, resumed, byte-compared against an uninterrupted run),
# journal resume semantics, and interleaved sessions over a shared
# worker pool. Deterministic: the seed is printed in every failure
# message; reproduce a red run with CHAOS_SEED=<seed> make chaos.
chaos:
	$(GO) test -race -run 'Chaos|Session|Resume|Interleaved|LRU|ModelHash' ./internal/dist/
	$(GO) run ./cmd/hoyanbench -exp recovery -rec-preset small -rec-iters 1 -rec-out=

# scale-smoke bounds the paper-scale modular path: the distributed
# modular/monolithic equality test under the race detector, then one
# modular-vs-monolithic experiment iteration on the mid-size preset with
# no snapshot write (reports are verified identical before any metric is
# recorded). Real BENCH_PR8.json numbers come from `hoyanbench -exp
# modular` on the full and xl presets.
scale-smoke:
	$(GO) test -race -run 'TestRunModularMatchesRunClasses' ./internal/dist/
	$(GO) run ./cmd/hoyanbench -exp modular -mod-preset medium -mod-out=

# fuzz-smoke runs each fuzz target briefly — enough to replay the corpus
# and shake out shallow parser regressions without turning CI into a
# fuzzing campaign.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPortableDecode -fuzztime=10s ./internal/logic/
	$(GO) test -run='^$$' -fuzz=FuzzCollectorLine -fuzztime=10s ./internal/collector/
	$(GO) test -run='^$$' -fuzz=FuzzCompiledEval -fuzztime=10s ./internal/qc/

# check is the CI gate: vet + hoyanlint, then the full suite under the
# race detector and the benchmark smoke. The dist/collector chaos tests
# run here too — they are deterministic (seeded faultnet, byte-budget
# fault schedules), so no flake allowance.
check: vet lint vet-configs race chaos scale-smoke bench bench-compare
