GO ?= go

.PHONY: build test vet race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: vet plus the full suite under the race detector.
# The dist/collector chaos tests run here too — they are deterministic
# (seeded faultnet, byte-budget fault schedules), so no flake allowance.
check: vet race
