package hoyan

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hoyan/internal/behavior"
	"hoyan/internal/core"
)

// PrefixSummary is the per-prefix outcome of a full sweep.
type PrefixSummary struct {
	Prefix string
	// MinFailures is the smallest failure count that makes the prefix
	// unreachable somewhere it should be reachable (-1 when within the
	// budget nothing breaks it).
	MinFailures int
	// WeakestRouter is where that minimal break happens.
	WeakestRouter string
	// SimTime is the per-prefix simulation time (the Figure 8 sample).
	SimTime time.Duration
}

// resetEvery is how many prefixes a sweep worker simulates before
// recycling its simulator (fresh formula arena, IGP re-seeded from the
// shared memo). See the "Sweep engine" section of DESIGN.md.
const resetEvery = 1

// SweepReport aggregates a whole-network verification run.
type SweepReport struct {
	Prefixes []PrefixSummary
	// Violations collects reachability losses (prefix unreachable at a
	// BGP-speaking router even with all links up).
	Violations []Violation
	Duration   time.Duration
	Workers    int
}

// Sweep verifies every announced prefix at every BGP router, sharded over
// `workers` goroutines — the deployment mode of §8 ("50 threads ... Hoyan
// could be run in a distributed way"). The model is assembled exactly
// once and shared read-only across workers together with a snapshot of
// the IGP shortest-path computations (core.Shared); each worker owns only
// the cheap mutable half — formula factory, IGP engine, scratch — so the
// sweep stays embarrassingly parallel like the paper's per-prefix
// parallelism without re-doing prefix-independent work per goroutine.
// workers <= 0 uses GOMAXPROCS.
func (n *Network) Sweep(opts Options, workers int) (*SweepReport, error) {
	if len(n.errs) > 0 {
		return nil, n.errs[0]
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.K == 0 {
		opts.K = 3
	}
	reg := opts.Profiles
	if reg == nil {
		reg = behavior.TrueProfiles()
	}
	model, err := core.Assemble(n.net, n.snap, reg)
	if err != nil {
		return nil, err
	}
	prefixes := model.AnnouncedPrefixes()
	if len(prefixes) == 0 {
		return &SweepReport{Workers: workers}, nil
	}
	if workers > len(prefixes) {
		workers = len(prefixes)
	}

	copts := core.DefaultOptions()
	copts.K = opts.K
	if opts.DisablePruning {
		copts.PruneOverK = false
		copts.PruneImpossible = false
	}
	if opts.DisableSimplify {
		copts.Simplify = false
	}

	start := time.Now()
	shared := core.NewShared(model, copts)
	type shardResult struct {
		summaries  []PrefixSummary
		violations []Violation
		err        error
	}
	results := make([]shardResult, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			m := model // shared, immutable after Assemble
			sim := shared.NewSimulator()
			done := 0
			for i := wkr; i < len(prefixes); i += workers {
				p := prefixes[i]
				t0 := time.Now()
				// Unrelated prefixes share no conditions, so the formula
				// arena only grows across runs; periodic resets keep both
				// memory and hash-cons lookup costs flat. Re-seeding from
				// the shared IGP memo makes a reset cheap.
				if done > 0 && done%resetEvery == 0 {
					sim.Reset()
				}
				done++
				res, err := sim.Run(p)
				if err != nil {
					results[wkr].err = err
					return
				}
				sum := PrefixSummary{
					Prefix:      p.String(),
					MinFailures: -1,
					SimTime:     time.Since(t0),
				}
				for _, node := range m.Net.Nodes() {
					if m.Configs[node.ID].BGP == nil {
						continue
					}
					pt := core.AnyRouteTo(p)
					if !res.Reachable(node.ID, pt) {
						results[wkr].violations = append(results[wkr].violations, Violation{
							Kind: "reachability", Prefix: p.String(), Router: node.Name,
							Details: "no route with all links up",
						})
						continue
					}
					min, _ := res.MinFailuresToLose(node.ID, pt)
					if min <= opts.K && (sum.MinFailures == -1 || min < sum.MinFailures) {
						sum.MinFailures = min
						sum.WeakestRouter = node.Name
					}
				}
				results[wkr].summaries = append(results[wkr].summaries, sum)
			}
		}(wkr)
	}
	wg.Wait()

	rep := &SweepReport{Duration: time.Since(start), Workers: workers}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		rep.Prefixes = append(rep.Prefixes, r.summaries...)
		rep.Violations = append(rep.Violations, r.violations...)
	}
	sort.Slice(rep.Prefixes, func(i, j int) bool { return rep.Prefixes[i].Prefix < rep.Prefixes[j].Prefix })
	sort.Slice(rep.Violations, func(i, j int) bool {
		if rep.Violations[i].Prefix != rep.Violations[j].Prefix {
			return rep.Violations[i].Prefix < rep.Violations[j].Prefix
		}
		return rep.Violations[i].Router < rep.Violations[j].Router
	})
	return rep, nil
}

// String summarizes the sweep for logs.
func (r *SweepReport) String() string {
	weak := 0
	for _, p := range r.Prefixes {
		if p.MinFailures >= 0 {
			weak++
		}
	}
	return fmt.Sprintf("sweep: %d prefixes on %d workers in %s (%d reachability violations, %d prefixes breakable within budget)",
		len(r.Prefixes), r.Workers, r.Duration.Round(time.Millisecond), len(r.Violations), weak)
}
