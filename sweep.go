package hoyan

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"hoyan/internal/behavior"
	"hoyan/internal/core"
	"hoyan/internal/netaddr"
)

// PrefixSummary is the per-prefix outcome of a full sweep.
type PrefixSummary struct {
	Prefix string
	// MinFailures is the smallest failure count that makes the prefix
	// unreachable somewhere it should be reachable (-1 when within the
	// budget nothing breaks it).
	MinFailures int
	// WeakestRouter is where that minimal break happens.
	WeakestRouter string
	// SimTime is the per-prefix simulation time (the Figure 8 sample).
	// Class members replicated from a representative report carry the
	// representative's time.
	SimTime time.Duration
}

// SweepReport aggregates a whole-network verification run.
type SweepReport struct {
	Prefixes []PrefixSummary
	// Violations collects reachability losses (prefix unreachable at a
	// BGP-speaking router even with all links up).
	Violations []Violation
	Duration   time.Duration
	Workers    int
	// Classes is the size of the dispatch partition: the behavior-class
	// count, or the prefix count when classing is disabled (Options.
	// NoClasses). See DESIGN.md, "Prefix equivalence classes".
	Classes int
	// Audited counts non-representative class members that were fully
	// simulated and diffed against their replicated report
	// (Options.AuditSample). The sweep fails loudly on any divergence.
	Audited int
	// Replayed counts classes whose reports came from the baseline store
	// instead of simulation (incremental mode; see DESIGN.md,
	// "Incremental re-verification").
	Replayed int
	// Invalidation carries the incremental-mode counters and the delta
	// kind histogram; nil for cold sweeps.
	Invalidation *core.InvalidationStats
	// Delta is the model delta an incremental sweep acted on; nil for
	// cold sweeps (and for baseline-vs-NoClasses runs, which cannot plan).
	Delta *core.ModelDelta
	// Modular carries the region-partition counters of a modular sweep
	// (Options.Modular), including every fallback to monolithic
	// simulation; nil for monolithic sweeps.
	Modular *ModularStats
}

// Sweep verifies every announced prefix at every BGP router, sharded over
// `workers` goroutines — the deployment mode of §8 ("50 threads ... Hoyan
// could be run in a distributed way"). The model is assembled exactly
// once and shared read-only across workers together with a snapshot of
// the IGP shortest-path computations (core.Shared); each worker owns only
// the cheap mutable half — formula factory, IGP engine, scratch — so the
// sweep stays embarrassingly parallel like the paper's per-prefix
// parallelism without re-doing prefix-independent work per goroutine.
//
// The unit of work is a prefix behavior class, not a prefix: prefixes the
// assembled model treats identically (core.Model.Classes) share one
// representative simulation whose report is replicated to every member.
// Options.NoClasses restores one-simulation-per-prefix, and
// Options.AuditSample re-simulates a fraction of the members to check the
// replication. workers <= 0 uses GOMAXPROCS.
//
// With Options.Baseline set (and NoIncremental unset), the sweep is
// incremental: it diffs the current model against the baseline's,
// re-simulates only the behavior classes the delta can affect, and
// replays the baseline's cached reports for the rest. Results are
// identical to a cold sweep by construction; Options.AuditSample also
// re-simulates a sample of the replayed classes and fails loudly if a
// cached report diverges.
func (n *Network) Sweep(opts Options, workers int) (*SweepReport, error) {
	rep, _, err := n.sweep(opts, workers, false)
	return rep, err
}

// SweepBaseline is Sweep plus baseline capture: it returns a ResultStore
// holding the swept model and every class's report, taint set, and
// portable reachability condition, for use as Options.Baseline in later
// incremental sweeps. When this sweep is itself incremental, replayed
// classes carry their baseline records forward unchanged, so a
// perturbation series pays capture cost only for re-simulated classes.
func (n *Network) SweepBaseline(opts Options, workers int) (*SweepReport, *ResultStore, error) {
	return n.sweep(opts, workers, true)
}

// sweepJob is one unit of worker work: a class (or singleton prefix)
// simulation, or a replay audit of a cached record.
type sweepJob struct {
	members []netaddr.Prefix // simulate members[0], replicate to all
	class   int              // index into classes; -1 when unclassed
	audit   *ClassRecord     // non-nil: replay audit against this record
}

func (n *Network) sweep(opts Options, workers int, capture bool) (*SweepReport, *ResultStore, error) {
	if len(n.errs) > 0 {
		return nil, nil, n.errs[0]
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.K == 0 {
		opts.K = 3
	}
	if capture && opts.NoClasses {
		return nil, nil, fmt.Errorf("hoyan: baseline capture requires behavior classes (NoClasses is set)")
	}
	if capture && opts.Modular {
		// A class record needs one whole-WAN Result (taint set, portable
		// conditions over every BGP speaker); region passes cannot supply it.
		return nil, nil, fmt.Errorf("hoyan: baseline capture requires monolithic simulation (Modular is set)")
	}
	reg := opts.Profiles
	if reg == nil {
		reg = behavior.TrueProfiles()
	}
	model, err := core.Assemble(n.net, n.snap, reg)
	if err != nil {
		return nil, nil, err
	}
	prefixes := model.AnnouncedPrefixes()
	rep := &SweepReport{Workers: workers}
	if len(prefixes) == 0 {
		if capture {
			return rep, newStoreShell(n, opts), nil
		}
		return rep, nil, nil
	}

	var classes []core.PrefixClass
	if !opts.NoClasses {
		classes = model.Classes()
	}

	// Incremental planning: diff against the baseline, split classes into
	// dirty (simulate) and clean (replay the cached record).
	var plan *incrementalPlan
	if opts.Baseline != nil && !opts.NoIncremental {
		if opts.NoClasses {
			rep.Invalidation = &core.InvalidationStats{
				FullInvalidation: true,
				Notes:            []string{"classing disabled (NoClasses); incremental replay unavailable, sweeping cold"},
			}
		} else {
			plan = planIncremental(model, classes, opts.Baseline, opts, reg)
			rep.Invalidation = plan.stats
			rep.Delta = plan.delta
		}
	}

	// The dispatch list. Replayed classes contribute no job unless
	// selected for a replay audit.
	var jobs []sweepJob
	seed := opts.AuditSeed
	if seed == 0 {
		seed = 1
	}
	switch {
	case opts.NoClasses:
		for _, p := range prefixes {
			jobs = append(jobs, sweepJob{members: []netaddr.Prefix{p}, class: -1})
		}
	case plan == nil:
		for i, c := range classes {
			jobs = append(jobs, sweepJob{members: c.Members, class: i})
		}
	default:
		arng := rand.New(rand.NewSource(seed + 1))
		for i, c := range classes {
			if plan.dirty[i] {
				jobs = append(jobs, sweepJob{members: c.Members, class: i})
				continue
			}
			// Replay the cached record; audit a seeded sample of replays.
			rec := plan.records[i]
			for _, p := range c.Members {
				s := rec.Summary
				s.Prefix = p.String()
				rep.Prefixes = append(rep.Prefixes, s)
				for _, v := range rec.Violations {
					v.Prefix = p.String()
					rep.Violations = append(rep.Violations, v)
				}
			}
			rep.Replayed++
			if opts.AuditSample > 0 && arng.Float64() < opts.AuditSample {
				jobs = append(jobs, sweepJob{members: c.Members, class: i, audit: rec})
			}
		}
	}

	// Member-level audit selection happens up front from a seeded source,
	// so the chosen members do not depend on worker count or scheduling.
	audit := map[netaddr.Prefix]bool{}
	if !opts.NoClasses && opts.AuditSample > 0 {
		rng := rand.New(rand.NewSource(seed))
		for _, job := range jobs {
			if job.audit != nil {
				continue
			}
			for _, p := range job.members[1:] {
				if rng.Float64() < opts.AuditSample {
					audit[p] = true
				}
			}
		}
	}

	// Workers beyond the dispatched job count would idle; clamp to what can
	// actually run in parallel (jobs, not prefixes).
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	rep.Workers = workers
	resetEvery := opts.ResetEvery
	if resetEvery <= 0 {
		resetEvery = 1
	}

	copts := core.DefaultOptions()
	copts.K = opts.K
	if opts.DisablePruning {
		copts.PruneOverK = false
		copts.PruneImpossible = false
	}
	if opts.DisableSimplify {
		copts.Simplify = false
	}

	start := time.Now()
	var captured []*ClassRecord
	if capture {
		captured = make([]*ClassRecord, len(classes))
	}
	type shardResult struct {
		summaries     []PrefixSummary
		violations    []Violation
		audited       int
		replayAudited int
		err           error
	}
	results := make([]shardResult, workers)
	switch {
	case len(jobs) > 0 && opts.Modular:
		if err := n.sweepModular(model, jobs, audit, opts, copts, workers, resetEvery, rep); err != nil {
			return nil, nil, err
		}
	case len(jobs) > 0:
		shared := core.NewShared(model, copts)
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				sim := shared.NewSimulator()
				done := 0
				// The returned Result is valid only until the next run call
				// (the simulator recycles its arena); capture and audits use
				// it immediately.
				run := func(p netaddr.Prefix) (PrefixSummary, []Violation, *core.Result, error) {
					// Unrelated prefixes share no conditions, so the formula
					// arena only grows across runs; periodic resets keep both
					// memory and hash-cons lookup costs flat. Re-seeding from
					// the shared IGP memo makes a reset cheap.
					if done > 0 && done%resetEvery == 0 {
						sim.Reset()
					}
					done++
					return sweepOne(sim, model, p, opts.K)
				}
				for i := wkr; i < len(jobs); i += workers {
					job := jobs[i]
					sum, viols, res, err := run(job.members[0])
					if err != nil {
						results[wkr].err = err
						return
					}
					if job.audit != nil {
						if err := auditReplay(job.audit, sum, viols, res, model, job.members[0]); err != nil {
							results[wkr].err = err
							return
						}
						results[wkr].replayAudited++
						continue
					}
					if plan != nil {
						// A dirty class re-simulated under an incremental plan:
						// stamp the sweep-wide counters so the run's Stats are
						// self-describing (core.Stats.Invalidation).
						res.Stats.Invalidation = plan.stats
					}
					if captured != nil && job.class >= 0 {
						rec := captureRecord(res, model, classes[job.class], sum, viols)
						captured[job.class] = &rec
					}
					// Replicate the representative's report to every member,
					// rewriting the prefix name.
					for _, p := range job.members {
						s := sum
						s.Prefix = p.String()
						results[wkr].summaries = append(results[wkr].summaries, s)
						for _, v := range viols {
							v.Prefix = p.String()
							results[wkr].violations = append(results[wkr].violations, v)
						}
					}
					for _, p := range job.members[1:] {
						if !audit[p] {
							continue
						}
						asum, aviols, _, err := run(p)
						if err != nil {
							results[wkr].err = err
							return
						}
						if err := diffAudit(sum, viols, asum, aviols, job.members[0], p); err != nil {
							results[wkr].err = err
							return
						}
						results[wkr].audited++
					}
				}
			}(wkr)
		}
		wg.Wait()
	}

	rep.Duration = time.Since(start)
	rep.Classes = len(classes)
	if opts.NoClasses {
		rep.Classes = len(prefixes)
	}
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		rep.Prefixes = append(rep.Prefixes, r.summaries...)
		rep.Violations = append(rep.Violations, r.violations...)
		rep.Audited += r.audited
		if rep.Invalidation != nil {
			rep.Invalidation.ReplaysAudited += r.replayAudited
		}
	}
	sort.Slice(rep.Prefixes, func(i, j int) bool { return rep.Prefixes[i].Prefix < rep.Prefixes[j].Prefix })
	sort.Slice(rep.Violations, func(i, j int) bool {
		if rep.Violations[i].Prefix != rep.Violations[j].Prefix {
			return rep.Violations[i].Prefix < rep.Violations[j].Prefix
		}
		return rep.Violations[i].Router < rep.Violations[j].Router
	})

	var store *ResultStore
	if capture {
		store = newStoreShell(n, opts)
		for i, cls := range classes {
			rec := captured[i]
			if rec == nil && plan != nil && plan.records[i] != nil && !plan.dirty[i] {
				// Carry the baseline record forward; only the fingerprint
				// string can have shifted under unrelated edits.
				carried := *plan.records[i]
				carried.Fingerprint = cls.Fingerprint
				rec = &carried
			}
			if rec == nil {
				return nil, nil, fmt.Errorf("hoyan: internal: no record captured for class %d (%s)", i, cls.Rep)
			}
			store.Classes = append(store.Classes, *rec)
		}
	}
	return rep, store, nil
}

// sweepOne simulates one prefix and derives its summary and violations —
// the same code path whether the prefix is a class representative, a
// singleton of an unclassed sweep, or an audit re-check of a member. The
// Result is returned for immediate use (taint capture, condition export,
// replay audits) and becomes invalid at the simulator's next run/Reset.
func sweepOne(sim *core.Simulator, m *core.Model, p netaddr.Prefix, k int) (PrefixSummary, []Violation, *core.Result, error) {
	t0 := time.Now()
	res, err := sim.Run(p)
	if err != nil {
		return PrefixSummary{}, nil, nil, err
	}
	sum := PrefixSummary{
		Prefix:      p.String(),
		MinFailures: -1,
		SimTime:     time.Since(t0),
	}
	var viols []Violation
	for _, node := range m.Net.Nodes() {
		if m.Configs[node.ID].BGP == nil {
			continue
		}
		pt := core.AnyRouteTo(p)
		if !res.Reachable(node.ID, pt) {
			viols = append(viols, Violation{
				Kind: "reachability", Prefix: p.String(), Router: node.Name,
				Details: "no route with all links up",
			})
			continue
		}
		min, _ := res.MinFailuresToLose(node.ID, pt)
		if min <= k && (sum.MinFailures == -1 || min < sum.MinFailures) {
			sum.MinFailures = min
			sum.WeakestRouter = node.Name
		}
	}
	return sum, viols, res, nil
}

// auditReplay checks a freshly simulated class representative against
// the cached record the incremental sweep replayed for its class: the
// report fields must match, and the stored portable condition DAG must
// still be equivalent to the fresh reachability condition at the
// record's anchor router.
func auditReplay(rec *ClassRecord, sum PrefixSummary, viols []Violation,
	res *core.Result, m *core.Model, p netaddr.Prefix) error {
	if err := diffAudit(rec.Summary, rec.Violations, sum, viols, p, p); err != nil {
		return fmt.Errorf("hoyan: incremental replay audit: stale cached report: %w", err)
	}
	if rec.Cond != nil && rec.CondRouter != "" {
		node, ok := m.Net.NodeByName(rec.CondRouter)
		if !ok {
			return fmt.Errorf("hoyan: incremental replay audit for %s: anchor router %q not in model", p, rec.CondRouter)
		}
		fresh := res.ReachCond(node.ID, core.AnyRouteTo(p))
		imported := rec.Cond.Import(res.Sim.F)
		if len(imported) != 1 || !res.Sim.F.Equivalent(imported[0], fresh) {
			return fmt.Errorf("hoyan: incremental replay audit for %s: stored reachability condition at %s no longer equivalent to fresh simulation", p, rec.CondRouter)
		}
	}
	return nil
}

// diffAudit compares an audited member's fully simulated report against
// the one replicated from its class representative. Violations are
// generated in node order by sweepOne on both sides, so positional
// comparison suffices.
func diffAudit(rep PrefixSummary, repV []Violation, got PrefixSummary, gotV []Violation, repP, p netaddr.Prefix) error {
	if got.MinFailures != rep.MinFailures || got.WeakestRouter != rep.WeakestRouter {
		return fmt.Errorf("hoyan: sweep audit divergence for %s (class of %s): got MinFailures=%d WeakestRouter=%q, replicated MinFailures=%d WeakestRouter=%q",
			p, repP, got.MinFailures, got.WeakestRouter, rep.MinFailures, rep.WeakestRouter)
	}
	if len(gotV) != len(repV) {
		return fmt.Errorf("hoyan: sweep audit divergence for %s (class of %s): %d violations, replicated %d",
			p, repP, len(gotV), len(repV))
	}
	for i := range gotV {
		if gotV[i].Kind != repV[i].Kind || gotV[i].Router != repV[i].Router || gotV[i].Details != repV[i].Details {
			return fmt.Errorf("hoyan: sweep audit divergence for %s (class of %s): violation %d is %s@%s, replicated %s@%s",
				p, repP, i, gotV[i].Kind, gotV[i].Router, repV[i].Kind, repV[i].Router)
		}
	}
	return nil
}

// String summarizes the sweep for logs.
func (r *SweepReport) String() string {
	weak := 0
	for _, p := range r.Prefixes {
		if p.MinFailures >= 0 {
			weak++
		}
	}
	s := fmt.Sprintf("sweep: %d prefixes in %d classes on %d workers in %s (%d reachability violations, %d prefixes breakable within budget",
		len(r.Prefixes), r.Classes, r.Workers, r.Duration.Round(time.Millisecond), len(r.Violations), weak)
	if r.Audited > 0 {
		s += fmt.Sprintf(", %d members audited", r.Audited)
	}
	if r.Replayed > 0 {
		s += fmt.Sprintf(", %d classes replayed from baseline", r.Replayed)
	}
	if r.Invalidation != nil && r.Invalidation.ReplaysAudited > 0 {
		s += fmt.Sprintf(", %d replays audited", r.Invalidation.ReplaysAudited)
	}
	if r.Modular != nil {
		switch {
		case r.Modular.Fallback:
			s += ", modular fallback: no usable partition"
		default:
			s += fmt.Sprintf(", modular: %d regions, %d passes, %d refusals (%d predicted)", r.Modular.Regions, r.Modular.Passes, r.Modular.Refused, r.Modular.Predicted)
		}
	}
	return s + ")"
}
