package hoyan

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"hoyan/internal/behavior"
	"hoyan/internal/core"
	"hoyan/internal/netaddr"
)

// PrefixSummary is the per-prefix outcome of a full sweep.
type PrefixSummary struct {
	Prefix string
	// MinFailures is the smallest failure count that makes the prefix
	// unreachable somewhere it should be reachable (-1 when within the
	// budget nothing breaks it).
	MinFailures int
	// WeakestRouter is where that minimal break happens.
	WeakestRouter string
	// SimTime is the per-prefix simulation time (the Figure 8 sample).
	// Class members replicated from a representative report carry the
	// representative's time.
	SimTime time.Duration
}

// SweepReport aggregates a whole-network verification run.
type SweepReport struct {
	Prefixes []PrefixSummary
	// Violations collects reachability losses (prefix unreachable at a
	// BGP-speaking router even with all links up).
	Violations []Violation
	Duration   time.Duration
	Workers    int
	// Classes is the number of simulations dispatched: the behavior-class
	// count, or the prefix count when classing is disabled (Options.
	// NoClasses). See DESIGN.md, "Prefix equivalence classes".
	Classes int
	// Audited counts non-representative class members that were fully
	// simulated and diffed against their replicated report
	// (Options.AuditSample). The sweep fails loudly on any divergence.
	Audited int
}

// Sweep verifies every announced prefix at every BGP router, sharded over
// `workers` goroutines — the deployment mode of §8 ("50 threads ... Hoyan
// could be run in a distributed way"). The model is assembled exactly
// once and shared read-only across workers together with a snapshot of
// the IGP shortest-path computations (core.Shared); each worker owns only
// the cheap mutable half — formula factory, IGP engine, scratch — so the
// sweep stays embarrassingly parallel like the paper's per-prefix
// parallelism without re-doing prefix-independent work per goroutine.
//
// The unit of work is a prefix behavior class, not a prefix: prefixes the
// assembled model treats identically (core.Model.Classes) share one
// representative simulation whose report is replicated to every member.
// Options.NoClasses restores one-simulation-per-prefix, and
// Options.AuditSample re-simulates a fraction of the members to check the
// replication. workers <= 0 uses GOMAXPROCS.
func (n *Network) Sweep(opts Options, workers int) (*SweepReport, error) {
	if len(n.errs) > 0 {
		return nil, n.errs[0]
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.K == 0 {
		opts.K = 3
	}
	reg := opts.Profiles
	if reg == nil {
		reg = behavior.TrueProfiles()
	}
	model, err := core.Assemble(n.net, n.snap, reg)
	if err != nil {
		return nil, err
	}
	prefixes := model.AnnouncedPrefixes()
	if len(prefixes) == 0 {
		return &SweepReport{Workers: workers}, nil
	}

	// The dispatch list: one job per behavior class (members, representative
	// first), or one singleton job per prefix with classing disabled.
	var jobs [][]netaddr.Prefix
	if opts.NoClasses {
		for _, p := range prefixes {
			jobs = append(jobs, []netaddr.Prefix{p})
		}
	} else {
		for _, c := range model.Classes() {
			jobs = append(jobs, c.Members)
		}
	}
	// Workers beyond the dispatched job count would idle; clamp to what can
	// actually run in parallel (jobs, not prefixes).
	if workers > len(jobs) {
		workers = len(jobs)
	}
	resetEvery := opts.ResetEvery
	if resetEvery <= 0 {
		resetEvery = 1
	}

	// Audit selection happens up front from a seeded source, so the chosen
	// members do not depend on worker count or scheduling.
	audit := map[netaddr.Prefix]bool{}
	if !opts.NoClasses && opts.AuditSample > 0 {
		seed := opts.AuditSeed
		if seed == 0 {
			seed = 1
		}
		rng := rand.New(rand.NewSource(seed))
		for _, job := range jobs {
			for _, p := range job[1:] {
				if rng.Float64() < opts.AuditSample {
					audit[p] = true
				}
			}
		}
	}

	copts := core.DefaultOptions()
	copts.K = opts.K
	if opts.DisablePruning {
		copts.PruneOverK = false
		copts.PruneImpossible = false
	}
	if opts.DisableSimplify {
		copts.Simplify = false
	}

	start := time.Now()
	shared := core.NewShared(model, copts)
	type shardResult struct {
		summaries  []PrefixSummary
		violations []Violation
		audited    int
		err        error
	}
	results := make([]shardResult, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			sim := shared.NewSimulator()
			done := 0
			run := func(p netaddr.Prefix) (PrefixSummary, []Violation, error) {
				// Unrelated prefixes share no conditions, so the formula
				// arena only grows across runs; periodic resets keep both
				// memory and hash-cons lookup costs flat. Re-seeding from
				// the shared IGP memo makes a reset cheap.
				if done > 0 && done%resetEvery == 0 {
					sim.Reset()
				}
				done++
				return sweepOne(sim, model, p, opts.K)
			}
			for i := wkr; i < len(jobs); i += workers {
				job := jobs[i]
				sum, viols, err := run(job[0])
				if err != nil {
					results[wkr].err = err
					return
				}
				// Replicate the representative's report to every member,
				// rewriting the prefix name.
				for _, p := range job {
					s := sum
					s.Prefix = p.String()
					results[wkr].summaries = append(results[wkr].summaries, s)
					for _, v := range viols {
						v.Prefix = p.String()
						results[wkr].violations = append(results[wkr].violations, v)
					}
				}
				for _, p := range job[1:] {
					if !audit[p] {
						continue
					}
					asum, aviols, err := run(p)
					if err != nil {
						results[wkr].err = err
						return
					}
					if err := diffAudit(sum, viols, asum, aviols, job[0], p); err != nil {
						results[wkr].err = err
						return
					}
					results[wkr].audited++
				}
			}
		}(wkr)
	}
	wg.Wait()

	rep := &SweepReport{Duration: time.Since(start), Workers: workers, Classes: len(jobs)}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		rep.Prefixes = append(rep.Prefixes, r.summaries...)
		rep.Violations = append(rep.Violations, r.violations...)
		rep.Audited += r.audited
	}
	sort.Slice(rep.Prefixes, func(i, j int) bool { return rep.Prefixes[i].Prefix < rep.Prefixes[j].Prefix })
	sort.Slice(rep.Violations, func(i, j int) bool {
		if rep.Violations[i].Prefix != rep.Violations[j].Prefix {
			return rep.Violations[i].Prefix < rep.Violations[j].Prefix
		}
		return rep.Violations[i].Router < rep.Violations[j].Router
	})
	return rep, nil
}

// sweepOne simulates one prefix and derives its summary and violations —
// the same code path whether the prefix is a class representative, a
// singleton of an unclassed sweep, or an audit re-check of a member.
func sweepOne(sim *core.Simulator, m *core.Model, p netaddr.Prefix, k int) (PrefixSummary, []Violation, error) {
	t0 := time.Now()
	res, err := sim.Run(p)
	if err != nil {
		return PrefixSummary{}, nil, err
	}
	sum := PrefixSummary{
		Prefix:      p.String(),
		MinFailures: -1,
		SimTime:     time.Since(t0),
	}
	var viols []Violation
	for _, node := range m.Net.Nodes() {
		if m.Configs[node.ID].BGP == nil {
			continue
		}
		pt := core.AnyRouteTo(p)
		if !res.Reachable(node.ID, pt) {
			viols = append(viols, Violation{
				Kind: "reachability", Prefix: p.String(), Router: node.Name,
				Details: "no route with all links up",
			})
			continue
		}
		min, _ := res.MinFailuresToLose(node.ID, pt)
		if min <= k && (sum.MinFailures == -1 || min < sum.MinFailures) {
			sum.MinFailures = min
			sum.WeakestRouter = node.Name
		}
	}
	return sum, viols, nil
}

// diffAudit compares an audited member's fully simulated report against
// the one replicated from its class representative. Violations are
// generated in node order by sweepOne on both sides, so positional
// comparison suffices.
func diffAudit(rep PrefixSummary, repV []Violation, got PrefixSummary, gotV []Violation, repP, p netaddr.Prefix) error {
	if got.MinFailures != rep.MinFailures || got.WeakestRouter != rep.WeakestRouter {
		return fmt.Errorf("hoyan: sweep audit divergence for %s (class of %s): got MinFailures=%d WeakestRouter=%q, replicated MinFailures=%d WeakestRouter=%q",
			p, repP, got.MinFailures, got.WeakestRouter, rep.MinFailures, rep.WeakestRouter)
	}
	if len(gotV) != len(repV) {
		return fmt.Errorf("hoyan: sweep audit divergence for %s (class of %s): %d violations, replicated %d",
			p, repP, len(gotV), len(repV))
	}
	for i := range gotV {
		if gotV[i].Kind != repV[i].Kind || gotV[i].Router != repV[i].Router || gotV[i].Details != repV[i].Details {
			return fmt.Errorf("hoyan: sweep audit divergence for %s (class of %s): violation %d is %s@%s, replicated %s@%s",
				p, repP, i, gotV[i].Kind, gotV[i].Router, repV[i].Kind, repV[i].Router)
		}
	}
	return nil
}

// String summarizes the sweep for logs.
func (r *SweepReport) String() string {
	weak := 0
	for _, p := range r.Prefixes {
		if p.MinFailures >= 0 {
			weak++
		}
	}
	s := fmt.Sprintf("sweep: %d prefixes in %d classes on %d workers in %s (%d reachability violations, %d prefixes breakable within budget",
		len(r.Prefixes), r.Classes, r.Workers, r.Duration.Round(time.Millisecond), len(r.Violations), weak)
	if r.Audited > 0 {
		s += fmt.Sprintf(", %d members audited", r.Audited)
	}
	return s + ")"
}
