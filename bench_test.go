// Benchmarks regenerating each table and figure of the paper's evaluation
// (see EXPERIMENTS.md for the mapping and the expected shapes). Each
// benchmark times one end-to-end regeneration of the experiment at a size
// that keeps `go test -bench=.` tractable; cmd/hoyanbench runs the
// full-size versions and prints the rows.
package hoyan_test

import (
	"testing"

	"hoyan/internal/baseline/batfish"
	"hoyan/internal/baseline/minesweeper"
	"hoyan/internal/baseline/plankton"
	"hoyan/internal/behavior"
	"hoyan/internal/bench"
	"hoyan/internal/core"
	"hoyan/internal/dataplane"
	"hoyan/internal/gen"
	"hoyan/internal/racing"
)

func mustWAN(b *testing.B, p gen.Params) *gen.WAN {
	b.Helper()
	w, err := gen.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func mustModel(b *testing.B, w *gen.WAN) *core.Model {
	b.Helper()
	m, err := core.Assemble(w.Net, w.Snap, behavior.TrueProfiles())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTable2VSBDetection: the tuner discovers and patches the VSBs of
// a multi-vendor WAN (Table 2).
func BenchmarkTable2VSBDetection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2VSBs(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3FullWANRouteReach: per-prefix simulation + reachability
// queries over the full WAN preset at k=3 (Table 3, route rows).
func BenchmarkTable3FullWANRouteReach(b *testing.B) {
	w := mustWAN(b, gen.Full())
	m := mustModel(b, w)
	prefixes := w.Prefixes()[:8]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulator(m, core.DefaultOptions())
		for _, p := range prefixes {
			res, err := sim.Run(p)
			if err != nil {
				b.Fatal(err)
			}
			for _, node := range m.Net.Nodes() {
				res.MinFailuresToLose(node.ID, core.AnyRouteTo(p))
			}
		}
	}
}

// BenchmarkTable3FullWANPacketReach: FIB build + symbolic packet
// reachability on the full WAN (Table 3, packet rows).
func BenchmarkTable3FullWANPacketReach(b *testing.B) {
	w := mustWAN(b, gen.Full())
	m := mustModel(b, w)
	sim := core.NewSimulator(m, core.DefaultOptions())
	p := w.Prefixes()[0]
	res, err := sim.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	gw, _ := m.Resolve(w.PrefixOwners[p])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fib := dataplane.Build(res)
		for _, node := range m.Net.Nodes() {
			if node.ID != gw {
				fib.MinFailuresToLose(node.ID, 0, p.Addr+1, gw)
			}
		}
	}
}

// BenchmarkTable3RoleEquivalence: all-group equivalence on the full WAN
// (Table 3, role equivalence row — the paper's 13s entry).
func BenchmarkTable3RoleEquivalence(b *testing.B) {
	w := mustWAN(b, gen.Full())
	m := mustModel(b, w)
	sim := core.NewSimulator(m, core.DefaultOptions())
	p := w.Prefixes()[0]
	res, err := sim.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	groups := w.Net.NodeGroups()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, members := range groups {
			for j := 1; j < len(members); j++ {
				res.EquivalentRoles(members[0], members[j])
			}
		}
	}
}

// BenchmarkTable3Racing: racing detection on a full-WAN prefix (Table 3,
// racing row).
func BenchmarkTable3Racing(b *testing.B) {
	w := mustWAN(b, gen.Full())
	m := mustModel(b, w)
	sim := core.NewSimulator(m, core.DefaultOptions())
	p := w.Prefixes()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := racing.Detect(sim, p, racing.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 4/5 cells: Hoyan vs the three baselines on the small subnet at
// k=1 (the crossover row of Table 4).
func BenchmarkTable4HoyanSmallK1(b *testing.B) {
	w := mustWAN(b, gen.Small())
	m := mustModel(b, w)
	p := w.Prefixes()[0]
	tgt := w.Cores[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.K = 1
		sim := core.NewSimulator(m, opts)
		res, err := sim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		id, _ := m.Resolve(tgt)
		res.KTolerant(id, core.AnyRouteTo(p), 1)
	}
}

func BenchmarkTable4BatfishSmallK1(b *testing.B) {
	w := mustWAN(b, gen.Small())
	p := w.Prefixes()[0]
	tgt := w.Cores[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf := batfish.New(w.Net, w.Snap, behavior.TrueProfiles())
		if _, err := bf.CheckRouteReach(p, tgt, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4MinesweeperSmallK1(b *testing.B) {
	w := mustWAN(b, gen.Small())
	p := w.Prefixes()[0]
	tgt := w.Cores[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := minesweeper.New(w.Net, w.Snap, behavior.TrueProfiles())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ms.CheckRouteReach(p, tgt, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4PlanktonSmallK1(b *testing.B) {
	w := mustWAN(b, gen.Small())
	p := w.Prefixes()[0]
	tgt := w.Cores[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk := plankton.New(w.Net, w.Snap, behavior.TrueProfiles())
		if _, err := pk.CheckRouteReach(p, tgt, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7CampaignMonth: verify one month of the audit campaign
// (Figure 7's per-month work).
func BenchmarkFig7CampaignMonth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7Campaign(gen.Small(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SimulatePrefix: one per-prefix simulation on the full WAN
// at k=3 (Figure 8's sample).
func BenchmarkFig8SimulatePrefix(b *testing.B) {
	w := mustWAN(b, gen.Full())
	m := mustModel(b, w)
	sim := core.NewSimulator(m, core.DefaultOptions())
	p := w.Prefixes()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9VerifyPrefix: the solver-side query of Figure 9 (reuse a
// converged simulation, solve reachability at every node).
func BenchmarkFig9VerifyPrefix(b *testing.B) {
	w := mustWAN(b, gen.Full())
	m := mustModel(b, w)
	sim := core.NewSimulator(m, core.DefaultOptions())
	p := w.Prefixes()[0]
	res, err := sim.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, node := range m.Net.Nodes() {
			res.MinFailuresToLose(node.ID, core.AnyRouteTo(p))
		}
	}
}

// BenchmarkFig14AccuracyTuning: the full pre→post tuning accuracy sweep
// (Figure 14).
func BenchmarkFig14AccuracyTuning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig14Accuracy(gen.Small()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15ExtRIBLoadAndFig16Localize: tuner data-collection figures.
func BenchmarkFig15ExtRIBLoadAndFig16Localize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig15and16Tuner(gen.Small()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendixFFormulaSizes: Hoyan vs Minesweeper formula sizes.
func BenchmarkAppendixFFormulaSizes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AppendixFFormulas(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches (DESIGN.md's called-out design choices).
func BenchmarkAblationPruningOn(b *testing.B) {
	benchAblation(b, func(o *core.Options) {})
}

func BenchmarkAblationPruningOff(b *testing.B) {
	benchAblation(b, func(o *core.Options) {
		o.PruneOverK = false
		o.PruneImpossible = false
	})
}

func BenchmarkAblationSimplifyOff(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Simplify = false })
}

func benchAblation(b *testing.B, mod func(*core.Options)) {
	b.Helper()
	w := mustWAN(b, gen.Medium())
	m := mustModel(b, w)
	p := w.Prefixes()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		mod(&opts)
		sim := core.NewSimulator(m, opts)
		if _, err := sim.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12PruningStats exercises the stats pipeline at a steady
// size, keeping the pruning-percentage computation honest over time.
func BenchmarkFig12PruningStats(b *testing.B) {
	w := mustWAN(b, gen.Medium())
	m := mustModel(b, w)
	p := w.Prefixes()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulator(m, core.DefaultOptions())
		res, err := sim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		st := res.Stats
		if st.Branches != st.Delivered+st.DroppedImpossible+st.DroppedOverK+st.DroppedPolicy {
			b.Fatal("stats accounting broken")
		}
	}
}
