package hoyan

import (
	"fmt"
	"sort"

	"hoyan/internal/core"
)

// Intent is one operator reachability expectation: the router must hold a
// route to the prefix, surviving up to MinTolerance link failures.
type Intent struct {
	Prefix string
	Router string
	// MinTolerance of 0 means plain reachability.
	MinTolerance int
}

// Violation is one detected intent or invariant breach.
type Violation struct {
	Kind    string // "reachability", "tolerance", "conflict", "equivalence", "racing", "packet"
	Prefix  string
	Router  string
	Details string
}

// String renders the violation for operators.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] prefix=%s router=%s: %s", v.Kind, v.Prefix, v.Router, v.Details)
}

// CheckIntents verifies a list of reachability intents, the update-
// checking workflow of Figure 2: build the target configuration, simulate,
// and compare against what the operator meant.
func (v *Verifier) CheckIntents(intents []Intent) ([]Violation, error) {
	var out []Violation
	for _, in := range intents {
		rep, err := v.RouteReach(in.Prefix, in.Router)
		if err != nil {
			return out, err
		}
		switch {
		case !rep.Reachable:
			out = append(out, Violation{Kind: "reachability", Prefix: in.Prefix, Router: in.Router,
				Details: "no route present"})
		case in.MinTolerance > 0 && rep.MinFailures >= 0 && rep.MinFailures <= in.MinTolerance:
			out = append(out, Violation{Kind: "tolerance", Prefix: in.Prefix, Router: in.Router,
				Details: fmt.Sprintf("breaks with %d failures (%v), need >%d", rep.MinFailures, rep.Witness, in.MinTolerance)})
		}
	}
	return out, nil
}

// AuditConflicts finds prefixes announced by more than one origin — the
// §7.2 IP-conflict audit. Only prefixes with a conflicting propagation
// (some router selecting the "wrong" origin) are reported.
func (v *Verifier) AuditConflicts() ([]Violation, error) {
	var out []Violation
	for _, p := range v.model.AnnouncedPrefixes() {
		anns := v.model.AnnouncersOf(p)
		if len(anns) < 2 {
			continue
		}
		var names []string
		for _, a := range anns {
			names = append(names, v.model.Net.Node(a).Name)
		}
		sort.Strings(names)
		out = append(out, Violation{Kind: "conflict", Prefix: p.String(),
			Details: fmt.Sprintf("announced by %v", names)})
	}
	return out, nil
}

// AuditGroups checks the equivalent-role property for every redundancy
// group (§7.2): members must hold the same routes.
func (v *Verifier) AuditGroups() ([]Violation, error) {
	groups := v.model.Net.NodeGroups()
	var names []string
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	var out []Violation
	for _, g := range names {
		members := groups[g]
		base := members[0]
		for _, other := range members[1:] {
			for _, p := range v.model.AnnouncedPrefixes() {
				res, err := v.result(p)
				if err != nil {
					return out, err
				}
				for _, d := range res.EquivalentRoles(base, other) {
					out = append(out, Violation{
						Kind:   "equivalence",
						Prefix: d.Prefix.String(),
						Router: v.model.Net.Node(other).Name,
						Details: fmt.Sprintf("group %s: %s differs from %s (%s: %s vs %s)",
							g, v.model.Net.Node(other).Name, v.model.Net.Node(base).Name, d.Field, d.B, d.A),
					})
				}
			}
		}
	}
	return out, nil
}

// AuditRacing checks every announced prefix for order-dependent
// convergence. Prefixes with a single origin are skipped (they cannot
// race in our model) unless checkAll is set.
func (v *Verifier) AuditRacing(checkAll bool) ([]Violation, error) {
	var out []Violation
	for _, p := range v.model.AnnouncedPrefixes() {
		if !checkAll && len(v.model.AnnouncersOf(p)) < 2 {
			continue
		}
		rep, err := v.CheckRacing(p.String())
		if err != nil {
			return out, err
		}
		if rep.Ambiguous {
			out = append(out, Violation{Kind: "racing", Prefix: p.String(),
				Details: fmt.Sprintf("%d convergences; ambiguous at %v", rep.Convergences, rep.AmbiguousRouters)})
		}
	}
	return out, nil
}

// AuditPacketGaps finds prefixes whose route is present at a router while
// packets cannot reach the gateway (data-plane ACL blackholes and LPM
// captures; §5.1's route-vs-packet distinction).
func (v *Verifier) AuditPacketGaps(fromRouters []string) ([]Violation, error) {
	var out []Violation
	for _, p := range v.model.AnnouncedPrefixes() {
		anns := v.model.AnnouncersOf(p)
		if len(anns) == 0 {
			continue
		}
		fib, err := v.fib(p)
		if err != nil {
			return out, err
		}
		for _, name := range fromRouters {
			id, err := v.node(name)
			if err != nil {
				return out, err
			}
			res, err := v.result(p)
			if err != nil {
				return out, err
			}
			if !res.Reachable(id, core.AnyRouteTo(p)) {
				continue
			}
			delivered := false
			for _, g := range anns {
				if fib.Reachable(id, 0, p.Addr+1, g) {
					delivered = true
					break
				}
			}
			if !delivered {
				out = append(out, Violation{Kind: "packet", Prefix: p.String(), Router: name,
					Details: "route present but packets cannot reach the gateway"})
			}
		}
	}
	return out, nil
}

// AuditAll runs the whole audit suite (the daily online-auditing loop of
// Figure 2) and returns the union of violations found.
func (v *Verifier) AuditAll(packetFrom []string) ([]Violation, error) {
	var out []Violation
	steps := []func() ([]Violation, error){
		v.AuditConflicts,
		v.AuditGroups,
		func() ([]Violation, error) { return v.AuditRacing(false) },
		func() ([]Violation, error) { return v.AuditPacketGaps(packetFrom) },
	}
	for _, step := range steps {
		vs, err := step()
		if err != nil {
			return out, err
		}
		out = append(out, vs...)
	}
	return out, nil
}
