package hoyan

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSaveAtomicReplacement: Save over an existing store must be
// all-or-nothing. A writer that dies mid-save (simulated here by the
// temp file a crashed Save leaves behind, and by a Save that fails
// before renaming) must leave the previous store byte-identical and
// loadable.
func TestSaveAtomicReplacement(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	writeStore(t, path)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A crashed Save manifests as a partially written temp file next to
	// the store — the rename never happened. The store itself must be
	// untouched and the leftover must not confuse the loader.
	partial := filepath.Join(dir, "baseline.json.tmp-crashed")
	if err := os.WriteFile(partial, before[:len(before)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("partial temp write modified the published store")
	}
	if _, err := LoadResultStore(path); err != nil {
		t.Fatalf("store unloadable with a crashed writer's temp file present: %v", err)
	}

	// A Save that cannot even stage its temp file (directory vanished
	// mid-flight) must fail loudly and leave the original store intact.
	st2 := &ResultStore{OptionsHash: "other", K: 1}
	if err := st2.Save(filepath.Join(dir, "no-such-subdir", "baseline.json")); err == nil {
		t.Fatal("Save into a missing directory succeeded")
	}
	if after, err = os.ReadFile(path); err != nil || string(after) != string(before) {
		t.Fatalf("failed Save disturbed the original store (err=%v)", err)
	}

	// A successful replacement publishes the new content completely and
	// leaves no temp debris behind.
	if err := st2.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResultStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.OptionsHash != "other" || got.K != 1 {
		t.Fatalf("replacement not visible after Save: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") && e.Name() != filepath.Base(partial) {
			t.Fatalf("Save left temp debris: %s", e.Name())
		}
	}
}
