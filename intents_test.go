package hoyan

import (
	"strings"
	"testing"
)

func TestParseIntents(t *testing.T) {
	s, err := ParseIntents(`
# service intents
reach 10.0.0.0/8 D
reach 10.0.0.0/8 C tolerate 1
equivalent pe1 pe2
deterministic 10.0.0.0/8
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Reach) != 2 || s.Reach[1].MinTolerance != 1 {
		t.Fatalf("reach %v", s.Reach)
	}
	if len(s.Equivalent) != 1 || s.Equivalent[0] != [2]string{"pe1", "pe2"} {
		t.Fatalf("equivalent %v", s.Equivalent)
	}
	if len(s.Deterministic) != 1 {
		t.Fatalf("deterministic %v", s.Deterministic)
	}
	if s.Empty() {
		t.Fatal("set is not empty")
	}
	if e, _ := ParseIntents(""); !e.Empty() {
		t.Fatal("empty input is empty set")
	}
}

func TestParseIntentErrors(t *testing.T) {
	for _, bad := range []string{
		"reach 10.0.0.0/8",
		"reach 10.0.0.0/8 D tolerate x",
		"reach 10.0.0.0/8 D frob 1",
		"equivalent a",
		"deterministic",
		"frobnicate a b",
	} {
		if _, err := ParseIntents(bad); err == nil {
			t.Errorf("ParseIntents(%q) must fail", bad)
		}
	}
}

func TestCheckIntentSet(t *testing.T) {
	n := figure4Net(t)
	v, err := n.Verifier(Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	set, err := ParseIntents(`
reach 10.0.0.0/8 D
reach 10.0.0.0/8 D tolerate 1
equivalent B D
deterministic 10.0.0.0/8
`)
	if err != nil {
		t.Fatal(err)
	}
	viols, err := v.CheckIntentSet(set)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: the tolerance intent fails (D breaks at 1 failure) and
	// the equivalence intent fails (B and D see different paths); plain
	// reach and determinism hold.
	kinds := map[string]int{}
	for _, vi := range viols {
		kinds[vi.Kind]++
	}
	if kinds["tolerance"] != 1 || kinds["equivalence"] != 1 || len(viols) != 2 {
		t.Fatalf("violations %v", viols)
	}
	if !strings.Contains(viols[1].Details, "vs") && !strings.Contains(viols[0].Details, "vs") {
		t.Fatalf("equivalence details missing: %v", viols)
	}
}
